package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	landmarkrd "landmarkrd"
	"landmarkrd/internal/breaker"
	"landmarkrd/internal/cluster"
	"landmarkrd/internal/rcache"
	"landmarkrd/internal/retry"
)

// Retry-After jitter band for 429 responses, matching rdserver's.
const (
	retryAfterMin = 1
	retryAfterMax = 3
)

// proxyConfig is the coordinator's configuration, mirroring rdserver's
// plain-struct style so tests can build proxies directly.
type proxyConfig struct {
	replicas    []string      // replica base URLs, e.g. http://host:8080
	portfolioK  int           // fleet portfolio size (ignored when a snapshot is loaded)
	indexMode   string        // portfolio column builder: exact, mc, or sketch
	snapshot    string        // portfolio snapshot path shared with the replicas
	seed        uint64        // portfolio build seed
	cacheSize   int           // result cache entries; 0 disables
	timeout     time.Duration // per-request budget; 0 disables
	maxInflight int           // concurrent query cap; 0 means 64
	healthInt   time.Duration // replica /readyz poll interval; 0 means 2s
	vnodes      int           // ring virtual nodes per replica (0 = default)

	// Resilience layer (DESIGN.md §14).
	hedgeAfter     time.Duration // fire a hedged request at the next owner after this delay (0 disables)
	attemptTimeout time.Duration // per-attempt downstream cap so slow/blackholed shards fail over (0 = none)
	retryBudget    int           // failover/hedge token-bucket capacity (0 = unlimited)
	retryRatio     float64       // budget tokens deposited per admitted query (0 = none)
	breakerWindow  time.Duration // per-replica breaker failure-rate window (0 disables breakers)
	healthHyst     int           // consecutive contrary probes before a replica flips up/down (0 = 1)
	minAttempt     time.Duration // remaining deadline required to start another attempt (0 = 2ms)
	now            func() time.Time
}

func (c *proxyConfig) validate() error {
	if len(c.replicas) == 0 {
		return fmt.Errorf("rdproxy: -replicas is required")
	}
	seen := make(map[string]bool, len(c.replicas))
	for _, r := range c.replicas {
		u, err := url.Parse(r)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return fmt.Errorf("rdproxy: replica %q is not an absolute URL", r)
		}
		if seen[r] {
			return fmt.Errorf("rdproxy: replica %q listed twice", r)
		}
		seen[r] = true
	}
	if c.timeout < 0 {
		return fmt.Errorf("rdproxy: -timeout must be >= 0, got %v", c.timeout)
	}
	if c.maxInflight < 0 {
		return fmt.Errorf("rdproxy: -max-inflight must be >= 0, got %d", c.maxInflight)
	}
	if c.cacheSize < 0 {
		return fmt.Errorf("rdproxy: -cache must be >= 0, got %d", c.cacheSize)
	}
	if c.healthInt < 0 {
		return fmt.Errorf("rdproxy: -health-interval must be >= 0, got %v", c.healthInt)
	}
	if c.hedgeAfter < 0 {
		return fmt.Errorf("rdproxy: -hedge-after must be >= 0, got %v", c.hedgeAfter)
	}
	if c.attemptTimeout < 0 {
		return fmt.Errorf("rdproxy: -attempt-timeout must be >= 0, got %v", c.attemptTimeout)
	}
	if c.retryBudget < 0 {
		return fmt.Errorf("rdproxy: -retry-budget must be >= 0, got %d", c.retryBudget)
	}
	if c.retryRatio < 0 || c.retryRatio > 1 {
		return fmt.Errorf("rdproxy: -retry-budget-ratio must be in [0, 1], got %v", c.retryRatio)
	}
	if c.breakerWindow < 0 {
		return fmt.Errorf("rdproxy: -breaker-window must be >= 0, got %v", c.breakerWindow)
	}
	if c.healthHyst < 0 {
		return fmt.Errorf("rdproxy: -health-hysteresis must be >= 0, got %d", c.healthHyst)
	}
	return nil
}

// proxyState is one immutable routing generation: the graph version, the
// fleet portfolio whose cost law scores pair affinity, and the ring router
// assigning its landmark positions to replicas. A SIGHUP rollout builds a
// fresh state and swaps the pointer — queries in flight keep the one they
// started with, and the new fingerprint retires every cached answer of the
// old generation by construction.
type proxyState struct {
	g      *landmarkrd.Graph
	pf     *landmarkrd.PortfolioIndex
	router *cluster.Router
	fp     uint64
}

// replica is one backend rdserver plus its health bit, flipped by the
// /readyz poll loop, and its circuit breaker, tripped by the owner-walk's
// own attempt outcomes. An unhealthy replica is skipped during routing (a
// skip counts as a failover) until enough consecutive polls see it ready
// again; a replica whose breaker is open is skipped the same way until
// the breaker's half-open probes close it.
type replica struct {
	name    string
	healthy atomic.Bool
	breaker *breaker.Breaker // nil when -breaker-window is 0
	// streak counts consecutive probe results contradicting the current
	// health bit; the bit flips only at the hysteresis threshold, so one
	// blip cannot evict a shard owner. Touched only by the (single
	// goroutine) health sweep.
	streak int
}

// proxyServer fans pair queries out over a fleet of rdserver replicas,
// each serving a shard (subset of landmark positions) of one fleet-wide
// portfolio. A query goes to the replica whose owned landmark minimizes
// the routed cost r(s,ℓ)+r(t,ℓ); a down or saturated shard fails over to
// the next-cheapest owner, then along the hash ring.
type proxyServer struct {
	cfg     proxyConfig
	metrics *landmarkrd.Metrics
	logger  *log.Logger
	client  *http.Client

	state    atomic.Pointer[proxyState]
	replicas []*replica

	cache  *rcache.Cache
	budget *retry.Budget // nil = unlimited failover/hedge budget

	// reloadMu serializes SIGHUP rollouts; graphPath is re-read under it.
	reloadMu  sync.Mutex
	graphPath string

	ready atomic.Bool

	sem   chan struct{}
	rngMu sync.Mutex
	rng   *rand.Rand
}

func newProxyServer(graphPath string, cfg proxyConfig) (*proxyServer, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.seed == 0 {
		cfg.seed = 1
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	p := &proxyServer{
		cfg:       cfg,
		metrics:   &landmarkrd.Metrics{},
		logger:    log.New(os.Stderr, "rdproxy: ", 0),
		graphPath: graphPath,
		rng:       rand.New(rand.NewSource(int64(cfg.seed))),
	}
	timeout := cfg.timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	p.client = &http.Client{Timeout: timeout}
	p.budget = retry.NewBudget(cfg.retryBudget, cfg.retryRatio)
	for _, name := range cfg.replicas {
		r := &replica{name: name}
		r.healthy.Store(true) // optimistic until the first poll says otherwise
		if cfg.breakerWindow > 0 {
			r.breaker = breaker.New(breaker.Options{
				Window:      cfg.breakerWindow,
				OpenTimeout: cfg.breakerWindow,
				Now:         cfg.now,
				OnOpen:      p.metrics.BreakerOpens.Inc,
				OnProbe:     p.metrics.BreakerHalfOpenProbes.Inc,
			})
		}
		p.replicas = append(p.replicas, r)
	}
	inflight := cfg.maxInflight
	if inflight <= 0 {
		inflight = 64
	}
	p.sem = make(chan struct{}, inflight)
	if cfg.cacheSize > 0 {
		p.cache = rcache.New(cfg.cacheSize, p.metrics)
	}
	st, err := p.buildState()
	if err != nil {
		return nil, err
	}
	p.state.Store(st)
	p.ready.Store(true)
	return p, nil
}

// buildState loads the graph and resolves the fleet portfolio (snapshot
// first, else a fresh build), then wires the consistent-hash router with
// the portfolio's cost law as the affinity score.
func (p *proxyServer) buildState() (*proxyState, error) {
	g, _, err := landmarkrd.LoadEdgeList(p.graphPath)
	if err != nil {
		return nil, fmt.Errorf("rdproxy: loading graph: %w", err)
	}
	var pf *landmarkrd.PortfolioIndex
	if p.cfg.snapshot != "" {
		pf, err = landmarkrd.LoadPortfolioIndex(p.cfg.snapshot, g)
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("rdproxy: portfolio snapshot %s: %w", p.cfg.snapshot, err)
		}
	}
	if pf == nil {
		mode, ok := map[string]landmarkrd.DiagMode{
			"exact": landmarkrd.DiagExactCG, "mc": landmarkrd.DiagMC, "sketch": landmarkrd.DiagSketch,
		}[p.cfg.indexMode]
		if !ok {
			return nil, fmt.Errorf("rdproxy: need -snapshot or -index-mode exact|mc|sketch to resolve the fleet portfolio (got %q)", p.cfg.indexMode)
		}
		k := p.cfg.portfolioK
		if k <= 0 {
			k = len(p.cfg.replicas)
		}
		pf, err = landmarkrd.BuildPortfolioIndex(g, landmarkrd.PortfolioBuildOptions{
			K: k, Mode: mode, Seed: p.cfg.seed, Metrics: p.metrics,
		})
		if err != nil {
			return nil, fmt.Errorf("rdproxy: building fleet portfolio: %w", err)
		}
	}
	router, err := cluster.NewRouter(p.cfg.replicas, pf.K(), p.cfg.vnodes,
		func(j, s, t int) float64 { return pf.RouteCost(j, s, t) })
	if err != nil {
		return nil, err
	}
	return &proxyState{g: g, pf: pf, router: router, fp: g.Fingerprint()}, nil
}

// reload is the SIGHUP rollout: re-read the graph (and snapshot, if
// configured) and publish a fresh routing state. The graph fingerprint is
// the fleet-wide version — when it changes, every cached answer of the old
// version stops being looked up. On failure the old state stays current.
func (p *proxyServer) reload() error {
	p.reloadMu.Lock()
	defer p.reloadMu.Unlock()
	p.ready.Store(false)
	defer p.ready.Store(true)
	st, err := p.buildState()
	if err != nil {
		return err
	}
	old := p.state.Swap(st)
	if old != nil && old.fp != st.fp {
		p.logger.Printf("rolled out graph version %#x (was %#x)", st.fp, old.fp)
	}
	return nil
}

func (p *proxyServer) watchReload(ch <-chan os.Signal) {
	for range ch {
		p.logger.Printf("SIGHUP, rolling out new graph version")
		if err := p.reload(); err != nil {
			p.logger.Printf("rollout failed, keeping current version: %v", err)
		}
	}
}

// healthSweep polls every replica's /readyz once, synchronously. The
// health loop calls it on a ticker; tests call it directly after flipping
// a stub replica's readiness. Probe results pass through the hysteresis
// filter: a replica flips up/down only after -health-hysteresis
// consecutive contrary probes, so one dropped poll cannot evict a shard
// owner and one lucky poll cannot resurrect a flapping one.
func (p *proxyServer) healthSweep(ctx context.Context) {
	for _, r := range p.replicas {
		up := func() bool {
			reqCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
			defer cancel()
			req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, r.name+"/readyz", nil)
			if err != nil {
				return false
			}
			resp, err := p.client.Do(req)
			if err != nil {
				return false
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return resp.StatusCode == http.StatusOK
		}()
		p.observeHealth(r, up)
	}
}

// observeHealth applies one probe result to r with hysteresis: the health
// bit flips only after healthHyst consecutive observations contradicting
// it; a probe agreeing with the current state resets the streak.
func (p *proxyServer) observeHealth(r *replica, up bool) {
	if up == r.healthy.Load() {
		r.streak = 0
		return
	}
	r.streak++
	need := p.cfg.healthHyst
	if need <= 0 {
		need = 1
	}
	if r.streak >= need {
		r.healthy.Store(up)
		r.streak = 0
		if p.logger != nil {
			dir := "down"
			if up {
				dir = "up"
			}
			p.logger.Printf("replica %s marked %s after %d consecutive probes", r.name, dir, need)
		}
	}
}

// healthLoop drives healthSweep until ctx is done.
func (p *proxyServer) healthLoop(ctx context.Context) {
	interval := p.cfg.healthInt
	if interval <= 0 {
		interval = 2 * time.Second
	}
	p.healthSweep(ctx)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			p.healthSweep(ctx)
		}
	}
}

func (p *proxyServer) replicaByName(name string) *replica {
	for _, r := range p.replicas {
		if r.name == name {
			return r
		}
	}
	return nil
}

// healthyCount returns how many replicas the last sweep saw ready.
func (p *proxyServer) healthyCount() int {
	n := 0
	for _, r := range p.replicas {
		if r.healthy.Load() {
			n++
		}
	}
	return n
}

// pairReply is the subset of a replica's /v1/pair response the proxy
// relays, plus the proxy's own routing fields.
type pairReply struct {
	S          int      `json:"s"`
	T          int      `json:"t"`
	Value      float64  `json:"value"`
	Converged  bool     `json:"converged"`
	Degraded   bool     `json:"degraded,omitempty"`
	ErrorBound *float64 `json:"error_bound,omitempty"`
	Landmark   int      `json:"landmark"`
	Replica    string   `json:"replica,omitempty"`
	Cache      string   `json:"cache,omitempty"`
	Failovers  int      `json:"failovers,omitempty"`
}

// errAllShardsDown reports that every routed replica was down, saturated,
// or failing.
var errAllShardsDown = errors.New("rdproxy: no replica could answer")

// errRetryBudgetExhausted reports that the global retry budget denied
// further failover/hedge attempts: the query fails fast rather than
// multiplying offered load.
var errRetryBudgetExhausted = errors.New("rdproxy: retry budget exhausted")

// errDeadlineBudget reports that the remaining request deadline was too
// small for another downstream attempt, so the owner-walk stopped early.
var errDeadlineBudget = errors.New("rdproxy: remaining deadline too small for another attempt")

// errHedgeLost is the cancellation cause attached to attempts abandoned
// because another replica answered first; their breakers see Drop, never
// a failure.
var errHedgeLost = errors.New("rdproxy: hedged attempt lost the race")

// errAttemptTimeout is the cancellation cause of the per-attempt timeout,
// distinguishing a slow/blackholed replica (breaker failure, failover)
// from the client's own deadline (no verdict, stop walking).
var errAttemptTimeout = errors.New("rdproxy: per-attempt timeout")

// forward sends one pair query to a single replica and parses the reply.
// A 429 or 5xx (or a transport error) is a failover signal, not a final
// answer; 4xx request errors are relayed to the client as-is.
type replicaError struct {
	status     int
	body       string
	retryAfter int // parsed Retry-After seconds, 0 if absent
}

func (e *replicaError) Error() string {
	return fmt.Sprintf("replica answered %d: %s", e.status, e.body)
}

// unavailableError decorates a terminal routing failure with the largest
// Retry-After any downstream replica suggested, so the client's backoff
// hint survives the fan-out.
type unavailableError struct {
	cause      error
	retryAfter int
}

func (e *unavailableError) Error() string { return e.cause.Error() }
func (e *unavailableError) Unwrap() error { return e.cause }

func (p *proxyServer) forward(ctx context.Context, base string, s, t int) (pairReply, error) {
	u := fmt.Sprintf("%s/v1/pair?s=%d&t=%d", base, s, t)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return pairReply{}, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return pairReply{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		ra, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
		return pairReply{}, &replicaError{status: resp.StatusCode, body: string(body), retryAfter: ra}
	}
	var out pairReply
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return pairReply{}, fmt.Errorf("replica %s: bad response body: %w", base, err)
	}
	return out, nil
}

// failoverWorthy reports whether a forward failure should be retried on
// the next-cheapest owner (down/saturated/broken shard) rather than
// relayed to the client (the client's own request was bad). cause is the
// attempt context's cancellation cause: a per-attempt timeout is a shard
// failure even though Go 1.22's net/http surfaces it as a bare
// DeadlineExceeded rather than propagating the cause.
func failoverWorthy(err, cause error) bool {
	var re *replicaError
	if errors.As(err, &re) {
		return re.status == http.StatusTooManyRequests || re.status >= 500
	}
	if errors.Is(cause, errAttemptTimeout) {
		return true
	}
	// Transport errors (refused, reset, timeout, torn body) are shard
	// failures — unless the client's own context expired.
	return !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled)
}

// attemptOutcome is one downstream attempt's result, delivered to the
// routePair select loop by the attempt goroutine.
type attemptOutcome struct {
	reply  pairReply
	err    error
	cause  error // attempt context's cancellation cause at completion
	target cluster.Target
	hedged bool // launched by the hedge timer, not a failover
}

// routePair walks the cost-ordered owner list for (s,t) with the full
// resilience stack:
//
//   - unready replicas and replicas whose circuit breaker is open are
//     skipped up front (one ShardFailovers each, no downstream load);
//   - each launched attempt gets its own per-attempt timeout (when
//     configured), so a blackholed shard turns into a breaker failure
//     and a failover instead of burning the whole request deadline;
//   - after hedgeAfter with no answer, the same query is fired at the
//     next-cheapest healthy owner; first success wins. Losers without a
//     per-attempt cap are context-cancelled with cause errHedgeLost
//     (breakers see Drop, never a failure); losers WITH a cap run on to
//     their own deadline and record a genuine verdict, so a blackholed
//     cheapest owner still trips its breaker instead of hiding behind
//     every lost race;
//   - every attempt beyond the query's first withdraws one token from
//     the global retry budget — an empty bucket stops the walk so
//     failover and hedging can never multiply offered load beyond
//     queries + deposited tokens;
//   - before each launch the remaining context deadline must cover
//     minAttempt, otherwise the walk stops (504) instead of starting a
//     doomed attempt;
//   - the largest downstream Retry-After rides the terminal error.
func (p *proxyServer) routePair(ctx context.Context, st *proxyState, s, t int) (pairReply, int, error) {
	targets := st.router.Route(st.fp, s, t)
	p.budget.Deposit()

	minAttempt := p.cfg.minAttempt
	if minAttempt <= 0 {
		minAttempt = 2 * time.Millisecond
	}

	// cancels reaps only uncapped losers when the walk returns; capped
	// attempts self-reap at their own deadline (see start) so breakers
	// still get real verdicts on attempts abandoned by a won race.
	results := make(chan attemptOutcome, len(targets))
	cancels := make([]context.CancelCauseFunc, 0, len(targets))
	defer func() {
		for _, cancel := range cancels {
			cancel(errHedgeLost)
		}
	}()

	var (
		failovers      int
		launched       int
		pending        int
		next           int // next candidate index in targets
		lastErr        error
		maxRetryAfter  int
		budgetDenied   bool
		deadlineDenied bool
	)

	// start launches the next launchable candidate, charging the retry
	// budget for every launch after the first. It reports whether an
	// attempt went downstream; on false the walk is over for its reason
	// (budgetDenied / deadlineDenied / exhausted list).
	start := func(hedged bool) bool {
		for next < len(targets) {
			tg := targets[next]
			next++
			r := p.replicaByName(tg.Member)
			if r == nil || !r.healthy.Load() {
				failovers++
				p.metrics.ShardFailovers.Inc()
				continue
			}
			if dl, ok := ctx.Deadline(); ok && dl.Sub(p.cfg.now()) < minAttempt {
				deadlineDenied = true
				next--
				return false
			}
			if r.breaker != nil && !r.breaker.Allow() {
				failovers++
				p.metrics.ShardFailovers.Inc()
				continue
			}
			if launched > 0 && !p.budget.Withdraw() {
				p.metrics.RetryBudgetExhausted.Inc()
				if r.breaker != nil {
					r.breaker.Drop()
				}
				budgetDenied = true
				next--
				return false
			}
			launched++
			pending++
			// A concurrent query's Deposit may have refilled the bucket
			// since a hedge was denied; this walk is no longer
			// budget-limited, so don't let finish() blame the budget.
			budgetDenied = false
			var actx context.Context
			var cancel context.CancelCauseFunc
			if p.cfg.attemptTimeout > 0 {
				// Capped attempts are detached from the walk's context and
				// bounded solely by their own deadline: an attempt
				// abandoned because the race was decided (or the client
				// left) runs on for at most attemptTimeout and records a
				// genuine breaker verdict — success if the replica was
				// merely slower than the winner, failure if it never
				// answered by the cap. Reaping losers instantly would
				// leave a blackholed cheapest owner with no verdicts at
				// all, since every race against it is over long before
				// its timeout. The timeout is relative (WithTimeoutCause)
				// because context deadlines live on the wall clock — an
				// injected test clock cannot drive them.
				actx, cancel = context.WithCancelCause(context.WithoutCancel(ctx))
				var tcancel context.CancelFunc
				actx, tcancel = context.WithTimeoutCause(actx,
					p.cfg.attemptTimeout, errAttemptTimeout)
				// Cancel the cause-carrying parent first: if tcancel ran
				// first the attempt context's cause would be the deadline
				// context's own context.Canceled, not the caller's cause.
				inner := cancel
				cancel = func(cause error) { inner(cause); tcancel() }
			} else {
				actx, cancel = context.WithCancelCause(ctx)
				cancels = append(cancels, cancel)
			}
			go func(tg cluster.Target, r *replica, hedged bool, actx context.Context, release context.CancelCauseFunc) {
				defer release(nil)
				reply, err := p.forward(actx, tg.Member, s, t)
				cause := context.Cause(actx)
				if r.breaker != nil {
					var re *replicaError
					switch {
					case err == nil:
						r.breaker.Record(true)
					case errors.Is(cause, errHedgeLost):
						// Abandoned race: no verdict on the replica.
						r.breaker.Drop()
					case errors.Is(cause, errAttemptTimeout):
						r.breaker.Record(false)
					case ctx.Err() != nil:
						// The client's own deadline/cancel killed the
						// attempt mid-flight: no verdict.
						r.breaker.Drop()
					case errors.As(err, &re) && re.status < 500 && re.status != http.StatusTooManyRequests:
						// The replica answered, just not with a result
						// we relay as success: the shard itself is fine.
						r.breaker.Record(true)
					default:
						r.breaker.Record(false)
					}
				}
				results <- attemptOutcome{reply: reply, err: err, cause: cause, target: tg, hedged: hedged}
			}(tg, r, hedged, actx, cancel)
			return true
		}
		return false
	}

	finish := func() (pairReply, int, error) {
		switch {
		case ctx.Err() != nil:
			return pairReply{}, failovers, ctx.Err()
		case budgetDenied:
			err := error(errRetryBudgetExhausted)
			if lastErr != nil {
				err = fmt.Errorf("%w (last: %v)", errRetryBudgetExhausted, lastErr)
			}
			return pairReply{}, failovers, &unavailableError{cause: err, retryAfter: maxRetryAfter}
		case deadlineDenied:
			remaining := time.Duration(0)
			if dl, ok := ctx.Deadline(); ok {
				remaining = dl.Sub(p.cfg.now())
			}
			p.logger.Printf("pair (%d,%d): stopping failover after %d/%d attempts, %v of deadline left (last: %v)",
				s, t, launched, len(targets), remaining.Round(time.Millisecond), lastErr)
			return pairReply{}, failovers, errDeadlineBudget
		case lastErr != nil:
			return pairReply{}, failovers,
				&unavailableError{cause: fmt.Errorf("%w (last: %v)", errAllShardsDown, lastErr), retryAfter: maxRetryAfter}
		default:
			return pairReply{}, failovers, errAllShardsDown
		}
	}

	if !start(false) {
		return finish()
	}

	// The hedge timer arms whenever an attempt is outstanding and another
	// candidate remains; each firing launches one hedged request at the
	// next-cheapest healthy owner (budget permitting) and re-arms, so a
	// chain of slow owners is raced pairwise down the cost order.
	var hedgeC <-chan time.Time
	var hedgeTimer *time.Timer
	defer func() {
		if hedgeTimer != nil {
			hedgeTimer.Stop()
		}
	}()
	armHedge := func() {
		if p.cfg.hedgeAfter <= 0 || hedgeC != nil || next >= len(targets) || budgetDenied || deadlineDenied {
			return
		}
		if hedgeTimer == nil {
			hedgeTimer = time.NewTimer(p.cfg.hedgeAfter)
		} else {
			hedgeTimer.Reset(p.cfg.hedgeAfter)
		}
		hedgeC = hedgeTimer.C
	}
	armHedge()

	for pending > 0 {
		select {
		case out := <-results:
			pending--
			if out.err == nil {
				p.metrics.ShardRouted.Inc()
				if out.hedged {
					p.metrics.HedgeWins.Inc()
				}
				out.reply.Replica = out.target.Member
				out.reply.Failovers = failovers
				return out.reply, failovers, nil
			}
			if ctx.Err() != nil {
				// The client is gone; drain nothing further.
				if pending == 0 {
					return finish()
				}
				continue
			}
			if !failoverWorthy(out.err, out.cause) {
				return pairReply{}, failovers, out.err
			}
			failovers++
			p.metrics.ShardFailovers.Inc()
			lastErr = out.err
			var re *replicaError
			if errors.As(out.err, &re) && re.retryAfter > maxRetryAfter {
				maxRetryAfter = re.retryAfter
			}
			start(false)
			armHedge()
		case <-hedgeC:
			hedgeC = nil
			if start(true) {
				p.metrics.HedgedRequests.Inc()
				armHedge()
			}
		case <-ctx.Done():
			return finish()
		}
	}
	return finish()
}

// errNotShareable marks a leader's non-cacheable reply inside a cache
// flight (degraded or unconverged): waiters recompute their own.
var errNotShareable = errors.New("rdproxy: reply not shareable")

// solvePair answers one pair through the cache (when configured) and the
// routed fan-out. Keys carry the current state's graph fingerprint, so a
// rollout retires stale entries wholesale.
func (p *proxyServer) solvePair(ctx context.Context, st *proxyState, s, t int) (pairReply, error) {
	if p.cache == nil {
		reply, _, err := p.routePair(ctx, st, s, t)
		return reply, err
	}
	key := rcache.NewKey(st.fp, s, t)
	var full pairReply
	var have bool
	v, out, err := p.cache.Do(ctx, key, func() (float64, bool, error) {
		reply, _, err := p.routePair(ctx, st, s, t)
		if err != nil {
			return 0, false, err
		}
		full, have = reply, true
		if reply.Converged && !reply.Degraded {
			return reply.Value, true, nil
		}
		return 0, false, errNotShareable
	})
	switch {
	case err == nil:
		if have {
			full.Cache = out.String()
			return full, nil
		}
		return pairReply{S: s, T: t, Value: v, Converged: true, Cache: out.String()}, nil
	case errors.Is(err, errNotShareable):
		if have {
			full.Cache = out.String()
			return full, nil
		}
		reply, _, rerr := p.routePair(ctx, st, s, t)
		return reply, rerr
	default:
		return pairReply{}, err
	}
}

// routes builds the coordinator mux with the same method-pattern + JSON
// 405 taxonomy as rdserver.
func (p *proxyServer) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", p.handleHealthz)
	mux.HandleFunc("/healthz", p.methodNotAllowed("GET, HEAD"))
	mux.HandleFunc("GET /readyz", p.handleReadyz)
	mux.HandleFunc("/readyz", p.methodNotAllowed("GET, HEAD"))
	mux.HandleFunc("GET /v1/pair", p.admit(p.handlePair))
	mux.HandleFunc("/v1/pair", p.methodNotAllowed("GET, HEAD"))
	mux.HandleFunc("POST /v1/batch", p.admit(p.handleBatch))
	mux.HandleFunc("/v1/batch", p.methodNotAllowed("POST"))
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/vars", p.methodNotAllowed("GET, HEAD"))
	return mux
}

func (p *proxyServer) methodNotAllowed(allow string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		p.writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			fmt.Sprintf("method %s not allowed on %s (allowed: %s)", r.Method, r.URL.Path, allow))
	}
}

// admit is the proxy's admission gate: the same immediate-429-with-jitter
// policy as the replicas, so saturation at either tier speaks one
// protocol.
func (p *proxyServer) admit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case p.sem <- struct{}{}:
			defer func() { <-p.sem }()
		default:
			p.rngMu.Lock()
			after := retryAfterMin + p.rng.Intn(retryAfterMax-retryAfterMin+1)
			p.rngMu.Unlock()
			w.Header().Set("Retry-After", strconv.Itoa(after))
			p.writeError(w, http.StatusTooManyRequests, "saturated", "coordinator at capacity")
			return
		}
		ctx := r.Context()
		if p.cfg.timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, p.cfg.timeout)
			defer cancel()
		}
		h(w, r.WithContext(ctx))
	}
}

func (p *proxyServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz answers ready only when the routing state is loaded, no
// rollout is mid-flight, and at least one replica is healthy — a fully
// dark fleet should be pulled from the load balancer.
func (p *proxyServer) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !p.ready.Load() {
		p.writeError(w, http.StatusServiceUnavailable, "not_ready", "rollout in progress")
		return
	}
	if p.healthyCount() == 0 {
		p.writeError(w, http.StatusServiceUnavailable, "no_replicas", "no healthy replica")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ready")
}

func (p *proxyServer) handlePair(w http.ResponseWriter, r *http.Request) {
	st := p.state.Load()
	s, t, err := parsePairParams(r, st.g)
	if err != nil {
		p.writeRequestError(w, err)
		return
	}
	reply, err := p.solvePair(r.Context(), st, s, t)
	if err != nil {
		p.writeProxyError(w, err)
		return
	}
	reply.S, reply.T = s, t
	writeJSON(w, struct {
		pairReply
		Epoch uint64 `json:"graph_version"`
	}{pairReply: reply, Epoch: st.fp})
}

type batchRequest struct {
	Pairs []struct {
		S int `json:"s"`
		T int `json:"t"`
	} `json:"pairs"`
}

func (p *proxyServer) handleBatch(w http.ResponseWriter, r *http.Request) {
	st := p.state.Load()
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		p.writeError(w, http.StatusBadRequest, "bad_request", "bad JSON body: "+err.Error())
		return
	}
	if len(req.Pairs) == 0 {
		p.writeError(w, http.StatusBadRequest, "bad_request", "empty batch")
		return
	}
	for i, q := range req.Pairs {
		if err := validVertex(st.g, q.S); err != nil {
			p.writeRequestError(w, fmt.Errorf("pairs[%d].s: %w", i, err))
			return
		}
		if err := validVertex(st.g, q.T); err != nil {
			p.writeRequestError(w, fmt.Errorf("pairs[%d].t: %w", i, err))
			return
		}
	}
	// Fan the batch out with bounded concurrency; each pair routes (and
	// caches) independently, so one saturated shard only slows its own
	// pairs.
	results := make([]pairReply, len(req.Pairs))
	errs := make([]error, len(req.Pairs))
	var wg sync.WaitGroup
	lanes := make(chan struct{}, 8)
	for i, q := range req.Pairs {
		wg.Add(1)
		go func(i, s, t int) {
			defer wg.Done()
			lanes <- struct{}{}
			defer func() { <-lanes }()
			reply, err := p.solvePair(r.Context(), st, s, t)
			reply.S, reply.T = s, t
			results[i], errs[i] = reply, err
		}(i, q.S, q.T)
	}
	wg.Wait()
	// Partial failure stays partial: a pair whose owners were all down (or
	// whose failover budget ran out) becomes its own error envelope in
	// place, and the pairs with healthy owners still get answers. The batch
	// as a whole fails only on request-level problems (bad JSON, bad
	// vertices), checked above.
	entries := make([]any, len(req.Pairs))
	failed := 0
	for i := range req.Pairs {
		if errs[i] == nil {
			entries[i] = results[i]
			continue
		}
		failed++
		_, code := proxyErrorStatus(errs[i])
		var e batchEntryError
		e.S, e.T = req.Pairs[i].S, req.Pairs[i].T
		e.Error.Code = code
		e.Error.Message = errs[i].Error()
		entries[i] = e
	}
	if failed > 0 {
		p.logger.Printf("batch: %d/%d pairs failed, returning per-pair envelopes", failed, len(req.Pairs))
	}
	writeJSON(w, struct {
		GraphVersion uint64 `json:"graph_version"`
		Results      []any  `json:"results"`
	}{GraphVersion: st.fp, Results: entries})
}

// batchEntryError is the per-pair error envelope inside a batch reply:
// the pair's coordinates plus the same {code, message} error object the
// top-level JSON errors use.
type batchEntryError struct {
	S     int `json:"s"`
	T     int `json:"t"`
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// errOutOfRange mirrors rdserver's 400-vs-422 split.
var errOutOfRange = errors.New("vertex out of range")

func validVertex(g *landmarkrd.Graph, v int) error {
	if v < 0 || v >= g.N() {
		return fmt.Errorf("%w: vertex %d not in [0, %d)", errOutOfRange, v, g.N())
	}
	return nil
}

func parsePairParams(r *http.Request, g *landmarkrd.Graph) (int, int, error) {
	s, err := intParam(r, "s")
	if err != nil {
		return 0, 0, err
	}
	t, err := intParam(r, "t")
	if err != nil {
		return 0, 0, err
	}
	if err := validVertex(g, s); err != nil {
		return 0, 0, err
	}
	if err := validVertex(g, t); err != nil {
		return 0, 0, err
	}
	return s, t, nil
}

func intParam(r *http.Request, name string) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("query parameter %q: %v", name, err)
	}
	return v, nil
}

func (p *proxyServer) writeRequestError(w http.ResponseWriter, err error) {
	if errors.Is(err, errOutOfRange) {
		p.writeError(w, http.StatusUnprocessableEntity, "vertex_out_of_range", err.Error())
		return
	}
	p.writeError(w, http.StatusBadRequest, "bad_request", err.Error())
}

// proxyErrorStatus maps a fan-out failure to its HTTP status and error
// code: an exhausted retry budget or owner list is a 503 (the fleet, not
// the request, is the problem), deadline expiry — the client's or the
// failover loop's own attempt budget — a 504, a relayed replica 4xx keeps
// its status, anything else a 502. Shared by the single-pair error path
// and the per-pair batch envelopes.
func proxyErrorStatus(err error) (int, string) {
	var re *replicaError
	switch {
	case errors.Is(err, errRetryBudgetExhausted):
		return http.StatusServiceUnavailable, "retry_budget_exhausted"
	case errors.Is(err, errDeadlineBudget):
		return http.StatusGatewayTimeout, "deadline_budget_exhausted"
	case errors.Is(err, errAllShardsDown):
		return http.StatusServiceUnavailable, "no_replicas"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline_exceeded"
	case errors.Is(err, context.Canceled):
		return 499, "canceled"
	case errors.As(err, &re):
		return re.status, "replica_error"
	default:
		return http.StatusBadGateway, "upstream"
	}
}

// retryAfterHint picks the Retry-After seconds for a terminal routing
// failure: the largest value any downstream replica suggested, else (for
// the fail-fast budget 503, which must always carry a hint) the same
// jittered band the admission gate uses.
func (p *proxyServer) retryAfterHint(err error) int {
	var ue *unavailableError
	if errors.As(err, &ue) && ue.retryAfter > 0 {
		return ue.retryAfter
	}
	if errors.Is(err, errRetryBudgetExhausted) {
		p.rngMu.Lock()
		defer p.rngMu.Unlock()
		return retryAfterMin + p.rng.Intn(retryAfterMax-retryAfterMin+1)
	}
	return 0
}

func (p *proxyServer) writeProxyError(w http.ResponseWriter, err error) {
	status, code := proxyErrorStatus(err)
	if ra := p.retryAfterHint(err); ra > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(ra))
	}
	p.writeError(w, status, code, err.Error())
}

type errorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// writeError emits the structured JSON envelope, logging encode failures
// like rdserver does.
func (p *proxyServer) writeError(w http.ResponseWriter, status int, code, msg string) {
	var body errorBody
	body.Error.Code = code
	body.Error.Message = msg
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(body); err != nil && p.logger != nil {
		p.logger.Printf("writing %d %s error envelope: %v", status, code, err)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
