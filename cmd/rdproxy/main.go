// Command rdproxy coordinates a fleet of rdserver replicas, each serving a
// shard (subset of landmark positions) of one fleet-wide portfolio.
//
// Usage:
//
//	rdproxy -graph g.txt -replicas http://a:8080,http://b:8080 \
//	    -portfolio 8 -index-mode exact -addr :9090
//
// Endpoints:
//
//	GET  /v1/pair?s=12&t=99   one pair estimate, routed to the best shard
//	POST /v1/batch            {"pairs":[{"s":12,"t":99},...]}
//	GET  /healthz             liveness probe (process is up)
//	GET  /readyz              readiness probe (>=1 healthy replica, no rollout)
//	GET  /debug/vars          expvar, including routing and cache metrics
//
// The coordinator builds (or loads via -snapshot) the same fleet portfolio
// the replicas shard, assigns its landmark positions to replicas over a
// consistent-hash ring, and routes every pair query to the replica whose
// owned landmark minimizes the cost-law score r(s,ℓ)+r(t,ℓ). A replica
// that is unready (its /readyz fails the -health-interval poll), saturated
// (429), or erroring fails over to the next-cheapest landmark owner, then
// along the ring. -cache N keeps the last N answers in a singleflight
// LRU keyed on the graph fingerprint. SIGHUP re-reads the graph (and
// snapshot) and publishes the new fingerprint fleet-wide, retiring every
// cached answer of the old version. SIGINT/SIGTERM drains in-flight
// queries for up to -drain-timeout. Excess concurrent queries beyond
// -max-inflight get an immediate 429 with a jittered Retry-After, the same
// protocol the replicas speak.
//
// Resilience (DESIGN.md §14): each replica carries a circuit breaker over
// a -breaker-window sliding failure window (open shards are skipped until
// a half-open probe succeeds); -hedge-after races slow owners against the
// next-cheapest healthy one; every failover or hedge beyond a query's
// first attempt spends a token from the -retry-budget bucket (refilled at
// -retry-budget-ratio per admitted query) and an empty bucket fails fast
// with 503 + Retry-After; -health-hysteresis consecutive contrary probes
// are required before a replica's health bit flips.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	landmarkrd "landmarkrd"
	"landmarkrd/internal/debugsrv"
)

func main() {
	var (
		graphFlag    = flag.String("graph", "", "edge-list graph file (required)")
		addrFlag     = flag.String("addr", ":9090", "HTTP listen address")
		replicasFlag = flag.String("replicas", "", "comma-separated replica base URLs (required)")
		portfolioKey = flag.Int("portfolio", 0, "fleet portfolio size (0 = one landmark per replica)")
		indexFlag    = flag.String("index-mode", "exact", "portfolio column builder: exact, mc, or sketch")
		snapshotFlag = flag.String("snapshot", "", "fleet portfolio snapshot: load if present, else build; SIGHUP re-reads it")
		seedFlag     = flag.Uint64("seed", 1, "portfolio build seed")
		cacheFlag    = flag.Int("cache", 0, "pair result cache entries, keyed on the graph fingerprint (0 disables)")
		timeoutFlag  = flag.Duration("timeout", 5*time.Second, "per-query budget including fan-out (0 = 30s transport default)")
		inflightFlag = flag.Int("max-inflight", 64, "max concurrent queries before 429")
		healthFlag   = flag.Duration("health-interval", 2*time.Second, "replica /readyz poll interval")
		hystFlag     = flag.Int("health-hysteresis", 2, "consecutive contrary probes before a replica flips up/down")
		hedgeFlag    = flag.Duration("hedge-after", 0, "hedge a pair query at the next-cheapest owner after this delay (0 disables)")
		attemptFlag  = flag.Duration("attempt-timeout", 0, "per-replica attempt cap so slow shards fail over early (0 = none)")
		budgetFlag   = flag.Int("retry-budget", 64, "failover/hedge token-bucket capacity (0 = unlimited)")
		ratioFlag    = flag.Float64("retry-budget-ratio", 0.1, "budget tokens refunded per admitted query, in [0,1]")
		breakerFlag  = flag.Duration("breaker-window", 10*time.Second, "per-replica circuit-breaker failure window and open cooldown (0 disables)")
		drainFlag    = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight queries on shutdown")
		debugFlag    = flag.String("debug-addr", "", "also serve expvar and pprof on this address")
	)
	flag.Parse()
	if err := run(*graphFlag, *addrFlag, *drainFlag, *debugFlag, proxyConfig{
		replicas:       splitReplicas(*replicasFlag),
		portfolioK:     *portfolioKey,
		indexMode:      *indexFlag,
		snapshot:       *snapshotFlag,
		seed:           *seedFlag,
		cacheSize:      *cacheFlag,
		timeout:        *timeoutFlag,
		maxInflight:    *inflightFlag,
		healthInt:      *healthFlag,
		healthHyst:     *hystFlag,
		hedgeAfter:     *hedgeFlag,
		attemptTimeout: *attemptFlag,
		retryBudget:    *budgetFlag,
		retryRatio:     *ratioFlag,
		breakerWindow:  *breakerFlag,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "rdproxy:", err)
		os.Exit(1)
	}
}

func splitReplicas(s string) []string {
	var out []string
	for _, r := range strings.Split(s, ",") {
		if r = strings.TrimSpace(r); r != "" {
			out = append(out, strings.TrimRight(r, "/"))
		}
	}
	return out
}

func run(graphPath, addr string, drain time.Duration, debugAddr string, cfg proxyConfig) error {
	if graphPath == "" {
		return fmt.Errorf("-graph is required")
	}
	p, err := newProxyServer(graphPath, cfg)
	if err != nil {
		return err
	}
	st := p.state.Load()
	fmt.Fprintf(os.Stderr, "rdproxy: fleet portfolio k=%d over %d replicas, graph version %#x\n",
		st.pf.K(), len(p.replicas), st.fp)
	for _, r := range p.replicas {
		fmt.Fprintf(os.Stderr, "rdproxy:   %s owns positions %v\n", r.name, st.router.Owners()[r.name])
	}
	landmarkrd.PublishMetrics("landmarkrd.proxy", p.metrics)

	dbg, err := debugsrv.Start(debugAddr)
	if err != nil {
		return err
	}
	if a := dbg.Addr(); a != "" {
		fmt.Fprintf(os.Stderr, "rdproxy: debug endpoint on http://%s/debug/vars\n", a)
	}

	httpSrv := &http.Server{Addr: addr, Handler: p.routes()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	go p.healthLoop(ctx)

	// SIGHUP rolls out a new graph version fleet-wide.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go p.watchReload(hup)

	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "rdproxy: shutting down, draining in-flight queries")
		drainCtx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		err := httpSrv.Shutdown(drainCtx)
		if dbgErr := dbg.Shutdown(drainCtx); err == nil {
			err = dbgErr
		}
		shutdownErr <- err
	}()

	fmt.Fprintf(os.Stderr, "rdproxy: coordinating on %s\n", addr)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return <-shutdownErr
}
