package main

import (
	"bytes"
	"net"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"landmarkrd/internal/graph"
	"landmarkrd/internal/randx"
)

func writeTestGraph(t *testing.T) string {
	t.Helper()
	g, err := graph.BarabasiAlbert(300, 3, randx.New(5))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := g.SaveEdgeList(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunExactQuery(t *testing.T) {
	path := writeTestGraph(t)
	var out bytes.Buffer
	err := run(config{graphPath: path, s: 3, t: 250, method: "exact", topk: 5, source: -1}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "r(3,250)") {
		t.Errorf("output missing result line: %s", out.String())
	}
}

func TestRunEstimatorMethods(t *testing.T) {
	path := writeTestGraph(t)
	for _, m := range []string{"abwalk", "push", "bipush"} {
		var out bytes.Buffer
		err := run(config{graphPath: path, s: 3, t: 250, method: m, seed: 1, topk: 5, source: -1}, &out)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if !strings.Contains(out.String(), "r(3,250)") {
			t.Errorf("%s: output missing result: %s", m, out.String())
		}
	}
}

func TestRunSingleSourceMode(t *testing.T) {
	path := writeTestGraph(t)
	var out bytes.Buffer
	err := run(config{graphPath: path, source: 7, topk: 3, s: -1, t: -1, seed: 1}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "closest 3 vertices") {
		t.Errorf("output missing ranking: %s", out.String())
	}
}

func TestRunStatsFlag(t *testing.T) {
	path := writeTestGraph(t)
	var out bytes.Buffer
	err := run(config{graphPath: path, s: 3, t: 250, method: "bipush", seed: 1, topk: 5, source: -1, stats: true}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"estimator stats:", "solver stats:", "push_ops", "cg_solves"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-stats output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunDebugEndpoint(t *testing.T) {
	path := writeTestGraph(t)
	var out bytes.Buffer
	err := run(config{graphPath: path, s: 3, t: 250, method: "push", seed: 1, topk: 5, source: -1, debugAddr: "127.0.0.1:0"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`debug endpoint on http://(\S+)/debug/vars`).FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("no debug endpoint line in output:\n%s", out.String())
	}
	// run closes its debug server on the way out, so the listener must be
	// released by now: the port rebinds cleanly instead of leaking.
	ln, err := net.Listen("tcp", m[1])
	if err != nil {
		t.Fatalf("debug listener leaked — rebinding %s: %v", m[1], err)
	}
	ln.Close()
}

func TestRunValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run(config{}, &out); err == nil {
		t.Error("missing -graph accepted")
	}
	path := writeTestGraph(t)
	if err := run(config{graphPath: path, s: -1, t: -1, source: -1}, &out); err == nil {
		t.Error("missing endpoints accepted")
	}
	if err := run(config{graphPath: path, s: 1, t: 2, method: "bogus", source: -1}, &out); err == nil {
		t.Error("unknown method accepted")
	}
	if err := run(config{graphPath: "/nonexistent", s: 1, t: 2, source: -1}, &out); err == nil {
		t.Error("missing graph file accepted")
	}
}

func TestRunPortfolioPair(t *testing.T) {
	path := writeTestGraph(t)
	var out bytes.Buffer
	err := run(config{graphPath: path, s: 3, t: 250, method: "push", seed: 1,
		topk: 5, source: -1, portfolio: 3, stats: true}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"r(3,250)", "portfolio k=3", "estimator stats:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunPortfolioSingleSource(t *testing.T) {
	graphPath := writeTestGraph(t)
	snap := filepath.Join(t.TempDir(), "pf.snap")
	cfg := config{graphPath: graphPath, source: 7, topk: 3, s: -1, t: -1,
		seed: 1, portfolio: 2, snapshot: snap}

	// First run builds the portfolio and saves the v3 snapshot.
	var first bytes.Buffer
	if err := run(cfg, &first); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"saved portfolio snapshot", "routed landmark=", "closest 3 vertices"} {
		if !strings.Contains(first.String(), want) {
			t.Errorf("first run missing %q:\n%s", want, first.String())
		}
	}

	// Second run must load it instead of rebuilding, and agree.
	var second bytes.Buffer
	if err := run(cfg, &second); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(second.String(), "loaded portfolio snapshot") {
		t.Errorf("second run rebuilt instead of loading:\n%s", second.String())
	}
	ranked := regexp.MustCompile(`vertex \d+`)
	if a, b := ranked.FindAllString(first.String(), -1), ranked.FindAllString(second.String(), -1); len(a) == 0 || strings.Join(a, ",") != strings.Join(b, ",") {
		t.Errorf("snapshot-loaded ranking diverged:\n%v\n%v", a, b)
	}
}
