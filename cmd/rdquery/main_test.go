package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"landmarkrd/internal/graph"
	"landmarkrd/internal/randx"
)

func writeTestGraph(t *testing.T) string {
	t.Helper()
	g, err := graph.BarabasiAlbert(300, 3, randx.New(5))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := g.SaveEdgeList(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunExactQuery(t *testing.T) {
	path := writeTestGraph(t)
	var out bytes.Buffer
	err := run(config{graphPath: path, s: 3, t: 250, method: "exact", topk: 5, source: -1}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "r(3,250)") {
		t.Errorf("output missing result line: %s", out.String())
	}
}

func TestRunEstimatorMethods(t *testing.T) {
	path := writeTestGraph(t)
	for _, m := range []string{"abwalk", "push", "bipush"} {
		var out bytes.Buffer
		err := run(config{graphPath: path, s: 3, t: 250, method: m, seed: 1, topk: 5, source: -1}, &out)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if !strings.Contains(out.String(), "r(3,250)") {
			t.Errorf("%s: output missing result: %s", m, out.String())
		}
	}
}

func TestRunSingleSourceMode(t *testing.T) {
	path := writeTestGraph(t)
	var out bytes.Buffer
	err := run(config{graphPath: path, source: 7, topk: 3, s: -1, t: -1, seed: 1}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "closest 3 vertices") {
		t.Errorf("output missing ranking: %s", out.String())
	}
}

func TestRunValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run(config{}, &out); err == nil {
		t.Error("missing -graph accepted")
	}
	path := writeTestGraph(t)
	if err := run(config{graphPath: path, s: -1, t: -1, source: -1}, &out); err == nil {
		t.Error("missing endpoints accepted")
	}
	if err := run(config{graphPath: path, s: 1, t: 2, method: "bogus", source: -1}, &out); err == nil {
		t.Error("unknown method accepted")
	}
	if err := run(config{graphPath: "/nonexistent", s: 1, t: 2, source: -1}, &out); err == nil {
		t.Error("missing graph file accepted")
	}
}
