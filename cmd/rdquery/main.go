// Command rdquery answers ad-hoc resistance-distance queries on an
// edge-list graph file.
//
// Usage:
//
//	rdquery -graph g.txt -s 12 -t 99                  # exact (CG solve)
//	rdquery -graph g.txt -s 12 -t 99 -method bipush   # landmark estimate
//	rdquery -graph g.txt -source 12 -topk 10          # single-source
//	rdquery -graph g.txt -source 12 -snapshot idx.snap  # reuse the index
//	rdquery -graph g.txt -s 12 -t 99 -method push -portfolio 4  # routed portfolio
//	rdquery -graph g.txt -source 12 -portfolio 4      # routed single-source
//
// With -portfolio K the query goes through a K-landmark portfolio: the
// landmark with the smallest cost-law score r(s,ℓ)+r(t,ℓ) answers, falling
// back across the members if it collides with an endpoint. -snapshot then
// reads/writes the v3 portfolio format (a v2 single-landmark snapshot is
// accepted and upgraded to K=1).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	landmarkrd "landmarkrd"
	"landmarkrd/internal/debugsrv"
)

type config struct {
	graphPath string
	s, t      int
	method    string
	seed      uint64
	walks     int
	theta     float64
	source    int
	topk      int
	workers   int
	portfolio int
	precond   string
	snapshot  string
	stats     bool
	debugAddr string
}

func main() {
	cfg := config{}
	flag.StringVar(&cfg.graphPath, "graph", "", "edge-list file (required)")
	flag.IntVar(&cfg.s, "s", -1, "source vertex (dense id)")
	flag.IntVar(&cfg.t, "t", -1, "sink vertex (dense id)")
	flag.StringVar(&cfg.method, "method", "exact", "exact|abwalk|push|bipush")
	flag.Uint64Var(&cfg.seed, "seed", 1, "random seed")
	flag.IntVar(&cfg.walks, "walks", 0, "Monte Carlo walks (abwalk/bipush)")
	flag.Float64Var(&cfg.theta, "theta", 0, "push residual threshold")
	flag.IntVar(&cfg.source, "source", -1, "single-source mode: source vertex")
	flag.IntVar(&cfg.topk, "topk", 10, "single-source mode: closest vertices to print")
	flag.IntVar(&cfg.workers, "workers", 0, "index-build worker count (0 = GOMAXPROCS, 1 = sequential; results are seed-deterministic either way)")
	flag.IntVar(&cfg.portfolio, "portfolio", 0, "route through a K-landmark portfolio (0 = single landmark)")
	flag.StringVar(&cfg.precond, "precond", "jacobi", "CG preconditioner for index builds and solves: none, jacobi, chol, or auto")
	flag.StringVar(&cfg.snapshot, "snapshot", "", "single-source mode: index snapshot file (load if present, else build and save)")
	flag.BoolVar(&cfg.stats, "stats", false, "print estimator/solver metrics after the query")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "", "serve expvar and pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rdquery:", err)
		os.Exit(1)
	}
}

func run(cfg config, out io.Writer) error {
	if cfg.graphPath == "" {
		return fmt.Errorf("-graph is required")
	}
	if _, err := landmarkrd.ParsePrecondMode(cfg.precond); err != nil {
		return err
	}
	landmarkrd.PublishMetrics("landmarkrd.solver", landmarkrd.SolverMetrics())
	dbg, err := debugsrv.Start(cfg.debugAddr)
	if err != nil {
		return err
	}
	defer dbg.Close()
	if addr := dbg.Addr(); addr != "" {
		fmt.Fprintf(out, "debug endpoint on http://%s/debug/vars\n", addr)
	}
	g, _, err := landmarkrd.LoadEdgeList(cfg.graphPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "loaded graph: n=%d m=%d weighted=%v\n", g.N(), g.M(), g.Weighted())

	if cfg.source >= 0 {
		return runSingleSource(g, cfg, out)
	}
	if cfg.s < 0 || cfg.t < 0 {
		return fmt.Errorf("need -s and -t (or -source for single-source mode)")
	}
	start := time.Now()
	value, err := runPair(g, cfg, out)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "r(%d,%d) = %.8f   [%s, %s]\n",
		cfg.s, cfg.t, value, cfg.method, time.Since(start).Round(time.Microsecond))
	if cfg.stats {
		fmt.Fprintf(out, "solver stats:\n%s\n", landmarkrd.SolverStats())
	}
	return nil
}

func runPair(g *landmarkrd.Graph, cfg config, out io.Writer) (float64, error) {
	switch cfg.method {
	case "exact":
		return landmarkrd.Exact(g, cfg.s, cfg.t)
	case "abwalk", "push", "bipush":
		m := map[string]landmarkrd.Method{
			"abwalk": landmarkrd.AbWalk, "push": landmarkrd.Push, "bipush": landmarkrd.BiPush,
		}[cfg.method]
		if cfg.portfolio > 0 {
			return runPortfolioPair(g, m, cfg, out)
		}
		est, err := landmarkrd.NewEstimator(g, m, landmarkrd.Options{
			Seed: cfg.seed, Walks: cfg.walks, Theta: cfg.theta,
		})
		if err != nil {
			return 0, err
		}
		res, err := est.Pair(cfg.s, cfg.t)
		if errors.Is(err, landmarkrd.ErrLandmarkConflict) {
			// A query endpoint is the landmark: fall back to exact.
			v, exErr := landmarkrd.Exact(g, cfg.s, cfg.t)
			if exErr != nil {
				return 0, exErr
			}
			fmt.Fprintln(out, "(endpoint equals the landmark; answered exactly)")
			return v, nil
		}
		if err != nil {
			return 0, err
		}
		fmt.Fprintf(out, "landmark=%d walks=%d pushOps=%d converged=%v\n",
			est.Landmark(), res.Walks, res.PushOps, res.Converged)
		landmarkrd.PublishMetrics("landmarkrd.estimator", est.Metrics())
		if cfg.stats {
			fmt.Fprintf(out, "estimator stats:\n%s\n", est.Stats())
		}
		return res.Value, nil
	default:
		return 0, fmt.Errorf("unknown method %q", cfg.method)
	}
}

// runPortfolioPair answers a pair estimate through a K-landmark portfolio.
func runPortfolioPair(g *landmarkrd.Graph, m landmarkrd.Method, cfg config, out io.Writer) (float64, error) {
	p, build, err := portfolioIndex(g, cfg, out)
	if err != nil {
		return 0, err
	}
	pe, err := landmarkrd.NewPortfolioEstimator(p, m, landmarkrd.Options{
		Seed: cfg.seed, Walks: cfg.walks, Theta: cfg.theta,
	})
	if err != nil {
		return 0, err
	}
	res, err := pe.Pair(cfg.s, cfg.t)
	if errors.Is(err, landmarkrd.ErrLandmarkConflict) {
		// Every portfolio member collides with an endpoint: fall back to exact.
		v, exErr := landmarkrd.Exact(g, cfg.s, cfg.t)
		if exErr != nil {
			return 0, exErr
		}
		fmt.Fprintln(out, "(every landmark conflicts; answered exactly)")
		return v, nil
	}
	if err != nil {
		return 0, err
	}
	stats := p.Stats()
	routed := -1
	for j, c := range stats.Routed {
		if c > 0 {
			routed = p.Landmarks[j]
		}
	}
	fmt.Fprintf(out, "portfolio k=%d landmarks=%v build=%s routed=%d fallbacks=%d\n",
		p.K(), p.Landmarks, build.Round(time.Millisecond), routed, stats.Fallbacks)
	landmarkrd.PublishMetrics("landmarkrd.estimator", pe.Metrics())
	if cfg.stats {
		fmt.Fprintf(out, "estimator stats:\n%s\n", pe.Stats())
	}
	return res.Value, nil
}

func runSingleSource(g *landmarkrd.Graph, cfg config, out io.Writer) error {
	if cfg.portfolio > 0 {
		return runPortfolioSingleSource(g, cfg, out)
	}
	idx, build, err := singleSourceIndex(g, cfg, out)
	if err != nil {
		return err
	}
	start := time.Now()
	all, err := landmarkrd.SingleSource(idx, cfg.source)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "index build %s, query %s (landmark=%d)\n",
		build.Round(time.Millisecond), time.Since(start).Round(time.Microsecond), idx.Landmark)

	printClosest(all, cfg, out)
	return nil
}

// runPortfolioSingleSource answers single-source through the portfolio's
// cheapest landmark for the source.
func runPortfolioSingleSource(g *landmarkrd.Graph, cfg config, out io.Writer) error {
	p, build, err := portfolioIndex(g, cfg, out)
	if err != nil {
		return err
	}
	start := time.Now()
	all, landmark, err := landmarkrd.PortfolioSingleSource(p, cfg.source)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "portfolio build %s, query %s (k=%d, routed landmark=%d)\n",
		build.Round(time.Millisecond), time.Since(start).Round(time.Microsecond), p.K(), landmark)
	printClosest(all, cfg, out)
	return nil
}

// printClosest prints the -topk vertices nearest the source by resistance.
func printClosest(all []float64, cfg config, out io.Writer) {
	order := make([]int, 0, len(all))
	for u := range all {
		if u != cfg.source {
			order = append(order, u)
		}
	}
	sort.Slice(order, func(i, j int) bool { return all[order[i]] < all[order[j]] })
	topk := cfg.topk
	if topk > len(order) {
		topk = len(order)
	}
	fmt.Fprintf(out, "closest %d vertices to %d by resistance distance:\n", topk, cfg.source)
	for i := 0; i < topk; i++ {
		u := order[i]
		fmt.Fprintf(out, "  %3d. vertex %-8d r=%.6f\n", i+1, u, all[u])
	}
}

// singleSourceIndex loads the -snapshot index when the file exists (any
// other load failure — corruption, version skew, wrong graph — is fatal,
// never silently rebuilt over), and otherwise builds one, saving it back
// when -snapshot names a path. The reported duration is the build time, or
// zero for a snapshot load.
func singleSourceIndex(g *landmarkrd.Graph, cfg config, out io.Writer) (*landmarkrd.LandmarkIndex, time.Duration, error) {
	if cfg.snapshot != "" {
		idx, err := landmarkrd.LoadLandmarkIndex(cfg.snapshot, g)
		switch {
		case err == nil:
			fmt.Fprintf(out, "loaded index snapshot %s (landmark=%d, mode=%s)\n",
				cfg.snapshot, idx.Landmark, idx.Mode)
			return idx, 0, nil
		case errors.Is(err, os.ErrNotExist):
			// Build below and save.
		default:
			return nil, 0, err
		}
	}
	v, err := landmarkrd.SelectLandmark(g, landmarkrd.MaxDegree, cfg.seed)
	if err != nil {
		return nil, 0, err
	}
	if v == cfg.source {
		v = (v + 1) % g.N()
	}
	start := time.Now()
	precond, err := landmarkrd.ParsePrecondMode(cfg.precond)
	if err != nil {
		return nil, 0, err
	}
	idx, err := landmarkrd.BuildLandmarkIndexOpts(g, v, landmarkrd.IndexBuildOptions{
		Mode: landmarkrd.DiagSketch, Seed: cfg.seed, Workers: cfg.workers, Precond: precond,
	})
	if err != nil {
		return nil, 0, err
	}
	build := time.Since(start)
	fmt.Fprintf(out, "preconditioner: %s\n", idx.Precond)
	if cfg.snapshot != "" {
		if err := landmarkrd.SaveLandmarkIndex(idx, cfg.snapshot); err != nil {
			return nil, 0, err
		}
		fmt.Fprintf(out, "saved index snapshot to %s\n", cfg.snapshot)
	}
	return idx, build, nil
}

// portfolioIndex loads the -snapshot portfolio when the file exists (v3, or
// a v2 single-landmark snapshot upgraded to K=1), and otherwise builds a
// -portfolio K sketch-mode portfolio, saving it back when -snapshot names a
// path — the same policy as singleSourceIndex.
func portfolioIndex(g *landmarkrd.Graph, cfg config, out io.Writer) (*landmarkrd.PortfolioIndex, time.Duration, error) {
	if cfg.snapshot != "" {
		p, err := landmarkrd.LoadPortfolioIndex(cfg.snapshot, g)
		switch {
		case err == nil:
			fmt.Fprintf(out, "loaded portfolio snapshot %s (k=%d, landmarks=%v, mode=%s)\n",
				cfg.snapshot, p.K(), p.Landmarks, p.Mode)
			return p, 0, nil
		case errors.Is(err, os.ErrNotExist):
			// Build below and save.
		default:
			return nil, 0, err
		}
	}
	precond, err := landmarkrd.ParsePrecondMode(cfg.precond)
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	p, err := landmarkrd.BuildPortfolioIndex(g, landmarkrd.PortfolioBuildOptions{
		K: cfg.portfolio, Mode: landmarkrd.DiagSketch, Seed: cfg.seed, Workers: cfg.workers, Precond: precond,
	})
	if err != nil {
		return nil, 0, err
	}
	build := time.Since(start)
	fmt.Fprintf(out, "preconditioners: %v\n", p.PrecondModes)
	if cfg.snapshot != "" {
		if err := landmarkrd.SavePortfolioIndex(p, cfg.snapshot); err != nil {
			return nil, 0, err
		}
		fmt.Fprintf(out, "saved portfolio snapshot to %s\n", cfg.snapshot)
	}
	return p, build, nil
}
