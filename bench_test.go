package landmarkrd_test

// The benchmarks in this file regenerate every experiment in DESIGN.md's
// experiment index (one benchmark per table/figure, named as promised
// there), plus micro-benchmarks of the individual algorithm kernels.
//
// Experiment benchmarks run the eval harness at Tiny scale with a small
// query budget so `go test -bench=.` completes quickly; run
// `go run ./cmd/rdbench -scale small` (or medium/large) for the full
// reproduction tables recorded in EXPERIMENTS.md.

import (
	"context"
	"fmt"
	"io"
	"testing"

	landmarkrd "landmarkrd"
	"landmarkrd/internal/baseline"
	"landmarkrd/internal/core"
	"landmarkrd/internal/eval"
	"landmarkrd/internal/graph"
	"landmarkrd/internal/lanczos"
	"landmarkrd/internal/lap"
	"landmarkrd/internal/randx"
	"landmarkrd/internal/sketch"
	"landmarkrd/internal/walk"
)

func benchConfig() eval.ExpConfig {
	return eval.ExpConfig{Scale: eval.Tiny, Seed: 2023, Queries: 4, Out: io.Discard}
}

func runExp(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := eval.RunExperiment(id, benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- experiment benchmarks (one per table/figure; see DESIGN.md §4) ---

func BenchmarkT2DatasetStats(b *testing.B) { runExp(b, "stats") }
func BenchmarkE1SmallKappa(b *testing.B)   { runExp(b, "e1a") }
func BenchmarkE1LargeKappa(b *testing.B)   { runExp(b, "e1b") }
func BenchmarkE2Weighted(b *testing.B)     { runExp(b, "e2") }
func BenchmarkE3Scalability(b *testing.B)  { runExp(b, "e3") }
func BenchmarkE4Memory(b *testing.B)       { runExp(b, "e4") }
func BenchmarkE5Landmark(b *testing.B)     { runExp(b, "e5") }
func BenchmarkE6Stability(b *testing.B)    { runExp(b, "e6") }
func BenchmarkE7SingleSource(b *testing.B) { runExp(b, "e7") }
func BenchmarkE8Identities(b *testing.B)   { runExp(b, "e8") }
func BenchmarkE9Lanczos(b *testing.B)      { runExp(b, "e9") }

// BenchmarkCSLinkPrediction covers the case study (examples/linkprediction)
// at reduced size: score one batch of candidate pairs by BiPush.
func BenchmarkCSLinkPrediction(b *testing.B) {
	g, err := landmarkrd.BarabasiAlbert(2000, 4, 2023)
	if err != nil {
		b.Fatal(err)
	}
	est, err := landmarkrd.NewEstimator(g, landmarkrd.BiPush, landmarkrd.Options{Seed: 7, Walks: 128})
	if err != nil {
		b.Fatal(err)
	}
	rng := randx.New(5)
	pairs := make([][2]int, 64)
	for i := range pairs {
		s, t := rng.Intn(g.N()), rng.Intn(g.N())
		for s == t || s == est.Landmark() || t == est.Landmark() {
			s, t = rng.Intn(g.N()), rng.Intn(g.N())
		}
		pairs[i] = [2]int{s, t}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		if _, err := est.Pair(p[0], p[1]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- kernel micro-benchmarks on the two canonical graph classes ---

func benchGraphs(b *testing.B) (social, road *graph.Graph) {
	b.Helper()
	var err error
	social, err = graph.BarabasiAlbert(5000, 4, randx.New(1))
	if err != nil {
		b.Fatal(err)
	}
	road, err = graph.Grid2D(70, 70, 0.05, randx.New(2))
	if err != nil {
		b.Fatal(err)
	}
	return social, road
}

func pairOn(g *graph.Graph, rng *randx.RNG, avoid int) (int, int) {
	s, t := rng.Intn(g.N()), rng.Intn(g.N())
	for s == t || s == avoid || t == avoid {
		s, t = rng.Intn(g.N()), rng.Intn(g.N())
	}
	return s, t
}

func BenchmarkExactCGSocial(b *testing.B) {
	g, _ := benchGraphs(b)
	rng := randx.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, t := pairOn(g, rng, -1)
		if _, err := lap.ResistanceCG(g, s, t); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPushPairSocial(b *testing.B) {
	g, _ := benchGraphs(b)
	v := g.MaxDegreeVertex()
	pe, err := core.NewPushEstimator(g, v, core.PushOptions{Theta: 1e-4})
	if err != nil {
		b.Fatal(err)
	}
	rng := randx.New(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, t := pairOn(g, rng, v)
		if _, err := pe.Pair(s, t); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPushPairRoad(b *testing.B) {
	_, g := benchGraphs(b)
	v := g.MaxDegreeVertex()
	pe, err := core.NewPushEstimator(g, v, core.PushOptions{Theta: 1e-4})
	if err != nil {
		b.Fatal(err)
	}
	rng := randx.New(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, t := pairOn(g, rng, v)
		if _, err := pe.Pair(s, t); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAbWalkPairSocial(b *testing.B) {
	g, _ := benchGraphs(b)
	v := g.MaxDegreeVertex()
	ab, err := core.NewAbWalkEstimator(g, v, core.AbWalkOptions{Walks: 400}, randx.New(6))
	if err != nil {
		b.Fatal(err)
	}
	rng := randx.New(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, t := pairOn(g, rng, v)
		if _, err := ab.Pair(s, t); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBiPushPairSocial(b *testing.B) {
	g, _ := benchGraphs(b)
	v := g.MaxDegreeVertex()
	bp, err := core.NewBiPushEstimator(g, v, core.BiPushOptions{PushTheta: 1e-2, Walks: 256}, randx.New(8))
	if err != nil {
		b.Fatal(err)
	}
	rng := randx.New(9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, t := pairOn(g, rng, v)
		if _, err := bp.Pair(s, t); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPowerMethodSocial(b *testing.B) {
	g, _ := benchGraphs(b)
	rng := randx.New(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, t := pairOn(g, rng, -1)
		if _, err := baseline.PowerMethod(g, s, t, baseline.PowerMethodOptions{Steps: 32}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLanczosIterationRoad(b *testing.B) {
	_, g := benchGraphs(b)
	rng := randx.New(11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, t := pairOn(g, rng, -1)
		if _, err := lanczos.Iteration(g, s, t, 40); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLanczosPushRoad(b *testing.B) {
	_, g := benchGraphs(b)
	rng := randx.New(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, t := pairOn(g, rng, -1)
		if _, err := lanczos.Push(g, s, t, lanczos.PushOptions{K: 40, Epsilon: 1e-4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSketchBuildSocial(b *testing.B) {
	g, _ := benchGraphs(b)
	for i := 0; i < b.N; i++ {
		if _, err := sketch.Build(g, sketch.Options{K: 64, Tol: 1e-6}, randx.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSketchQuery(b *testing.B) {
	g, _ := benchGraphs(b)
	sk, err := sketch.Build(g, sketch.Options{K: 128, Tol: 1e-6}, randx.New(13))
	if err != nil {
		b.Fatal(err)
	}
	rng := randx.New(14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, t := pairOn(g, rng, -1)
		if _, err := sk.Resistance(s, t); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWilsonUSTSocial(b *testing.B) {
	g, _ := benchGraphs(b)
	s := walk.NewSampler(g)
	rng := randx.New(15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := walk.WilsonUST(s, 0, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLandmarkIndexBuildMC(b *testing.B) {
	g, err := graph.BarabasiAlbert(1000, 4, randx.New(16))
	if err != nil {
		b.Fatal(err)
	}
	v := g.MaxDegreeVertex()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildIndex(g, v, core.IndexOptions{Mode: core.DiagMC, WalksPerVertex: 16}, randx.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildIndex measures full-index construction in each DiagMode.
// Workers is left at 0 (= GOMAXPROCS), so running with -cpu 1,4 compares
// the sequential build against the four-worker build directly; for a fixed
// seed both produce bit-identical Diag arrays.
func BenchmarkBuildIndex(b *testing.B) {
	g, err := graph.BarabasiAlbert(2000, 4, randx.New(20))
	if err != nil {
		b.Fatal(err)
	}
	v := g.MaxDegreeVertex()
	for _, bc := range []struct {
		name string
		opts core.IndexOptions
	}{
		{"exact", core.IndexOptions{Mode: core.DiagExactCG}},
		{"mc", core.IndexOptions{Mode: core.DiagMC, WalksPerVertex: 64}},
		{"sketch", core.IndexOptions{Mode: core.DiagSketch, SketchEpsilon: 0.3}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildIndex(g, v, bc.opts, randx.New(21)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuildPortfolio measures K-landmark portfolio construction in
// each DiagMode at K=4 (the default). Workers is left at 0, so -cpu 1,4
// compares sequential and parallel column builds; for a fixed seed both
// produce bit-identical columns.
func BenchmarkBuildPortfolio(b *testing.B) {
	g, err := graph.BarabasiAlbert(2000, 4, randx.New(20))
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name string
		opts core.PortfolioOptions
	}{
		{"exact", core.PortfolioOptions{K: 4, Mode: core.DiagExactCG}},
		{"mc", core.PortfolioOptions{K: 4, Mode: core.DiagMC, WalksPerVertex: 64}},
		{"sketch", core.PortfolioOptions{K: 4, Mode: core.DiagSketch, SketchEpsilon: 0.3}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildPortfolio(g, bc.opts, randx.New(21)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchPrecondGrounded builds the exact-CG index on a perturbed grid — the
// ill-conditioned, high-diameter regime where preconditioning matters — under
// one preconditioner mode, reporting total CG iterations per build alongside
// wall time. Workers is left at 0, so -cpu 1,4 also exercises the shared
// read-only factor across parallel column builds.
func benchPrecondGrounded(b *testing.B, mode core.PrecondMode) {
	g, err := graph.Grid2D(32, 32, 0.1, randx.New(40))
	if err != nil {
		b.Fatal(err)
	}
	v := g.MaxDegreeVertex()
	before := lap.SolverMetrics().Snapshot().CGIterations
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildIndex(g, v, core.IndexOptions{
			Mode: core.DiagExactCG, Precond: mode,
		}, randx.New(41)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	after := lap.SolverMetrics().Snapshot().CGIterations
	b.ReportMetric(float64(after-before)/float64(b.N), "cg-iters/op")
}

func BenchmarkPrecondGroundedJacobi(b *testing.B) { benchPrecondGrounded(b, core.PrecondJacobi) }
func BenchmarkPrecondGroundedChol(b *testing.B)   { benchPrecondGrounded(b, core.PrecondChol) }

// BenchmarkPortfolioRoute isolates the per-query router: sorting K=4
// column costs for a random pair.
func BenchmarkPortfolioRoute(b *testing.B) {
	g, err := graph.BarabasiAlbert(2000, 4, randx.New(20))
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.BuildPortfolio(g, core.PortfolioOptions{K: 4, Mode: core.DiagSketch}, randx.New(21))
	if err != nil {
		b.Fatal(err)
	}
	rng := randx.New(22)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, t := pairOn(g, rng, -1)
		if order := p.Route(s, t); len(order) != p.K() {
			b.Fatal("short route")
		}
	}
}

// BenchmarkPortfolioSingleSource measures the routed single-source query
// (one grounded solve at the cheapest landmark plus the column algebra).
func BenchmarkPortfolioSingleSource(b *testing.B) {
	g, err := graph.BarabasiAlbert(2000, 4, randx.New(17))
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.BuildPortfolio(g, core.PortfolioOptions{K: 4, Mode: core.DiagMC, WalksPerVertex: 16}, randx.New(18))
	if err != nil {
		b.Fatal(err)
	}
	rng := randx.New(19)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := rng.Intn(g.N())
		if _, _, err := p.SingleSource(s, core.SingleSourceOptions{Tol: 1e-6}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSingleSourceQuery(b *testing.B) {
	g, err := graph.BarabasiAlbert(2000, 4, randx.New(17))
	if err != nil {
		b.Fatal(err)
	}
	v := g.MaxDegreeVertex()
	idx, err := core.BuildIndex(g, v, core.IndexOptions{Mode: core.DiagMC, WalksPerVertex: 16}, randx.New(18))
	if err != nil {
		b.Fatal(err)
	}
	rng := randx.New(19)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := rng.Intn(g.N())
		if _, err := idx.SingleSource(s, core.SingleSourceOptions{Tol: 1e-6}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConditionNumberLanczos(b *testing.B) {
	g, _ := benchGraphs(b)
	for i := 0; i < b.N; i++ {
		if _, err := lap.LanczosConditionNumber(g, 60, randx.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraphGenBA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := graph.BarabasiAlbert(10000, 4, randx.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// --- public-API benchmarks for the extension features ---

func BenchmarkPairsBatchParallel(b *testing.B) {
	g, err := landmarkrd.BarabasiAlbert(3000, 4, 31)
	if err != nil {
		b.Fatal(err)
	}
	rng := randx.New(32)
	queries := make([]landmarkrd.PairQuery, 32)
	for i := range queries {
		queries[i] = landmarkrd.PairQuery{S: rng.Intn(g.N()), T: rng.Intn(g.N())}
		for queries[i].S == queries[i].T {
			queries[i].T = rng.Intn(g.N())
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := landmarkrd.Pairs(g, landmarkrd.Push, queries, landmarkrd.BatchOptions{
			Options: landmarkrd.Options{Seed: 1, Theta: 1e-4},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPairsBatchPooled is the pooled counterpart of
// BenchmarkPairsBatchParallel: one BatchEngine serves every iteration, so
// estimator scratch buffers and landmark selection are amortized. Compare
// allocs/op and the reported builds/op against the unpooled benchmark.
func BenchmarkPairsBatchPooled(b *testing.B) {
	g, err := landmarkrd.BarabasiAlbert(3000, 4, 31)
	if err != nil {
		b.Fatal(err)
	}
	rng := randx.New(32)
	queries := make([]landmarkrd.PairQuery, 32)
	for i := range queries {
		queries[i] = landmarkrd.PairQuery{S: rng.Intn(g.N()), T: rng.Intn(g.N())}
		for queries[i].S == queries[i].T {
			queries[i].T = rng.Intn(g.N())
		}
	}
	engine, err := landmarkrd.NewBatchEngine(g, landmarkrd.Push, landmarkrd.BatchOptions{
		Options: landmarkrd.Options{Seed: 1, Theta: 1e-4},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Pairs(queries); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(engine.Stats().EstimatorBuilds)/float64(b.N), "builds/op")
}

func BenchmarkClusterGraph(b *testing.B) {
	g, err := landmarkrd.WattsStrogatz(2000, 3, 0.05, 33)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := landmarkrd.ClusterGraph(g, 4, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDynamicAddAndQuery(b *testing.B) {
	g, err := landmarkrd.BarabasiAlbert(2000, 4, 34)
	if err != nil {
		b.Fatal(err)
	}
	u, err := landmarkrd.NewDynamic(g)
	if err != nil {
		b.Fatal(err)
	}
	rng := randx.New(35)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, c := rng.Intn(g.N()), rng.Intn(g.N())
		if a == c {
			continue
		}
		if err := u.AddEdge(a, c, 1); err != nil {
			b.Fatal(err)
		}
		if _, err := u.Resistance(a, c); err != nil {
			b.Fatal(err)
		}
		if err := u.RemoveConductance(a, c, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLapSolverQuery(b *testing.B) {
	g, err := landmarkrd.Grid(50, 50, 0, 36)
	if err != nil {
		b.Fatal(err)
	}
	solver, err := landmarkrd.NewLapSolver(g, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := randx.New(37)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, t := pairOn(g, rng, -1)
		if _, err := solver.Resistance(s, t); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkElectricFlow(b *testing.B) {
	g, err := landmarkrd.Grid(40, 40, 0.05, 38)
	if err != nil {
		b.Fatal(err)
	}
	rng := randx.New(39)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, t := pairOn(g, rng, -1)
		if _, err := landmarkrd.ComputeElectricFlow(g, s, t); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryUnderUpdates measures the fresh-read path of the live
// epoch layer: one grounded solve plus O(1) Sherman-Morrison work per
// pending patch. The patch-depth subtests map the cost law that drives
// the re-base threshold (patches·n/(4m+n) extra sweeps per query).
func BenchmarkQueryUnderUpdates(b *testing.B) {
	for _, patches := range []int{0, 8, 32} {
		b.Run(fmt.Sprintf("patches=%d", patches), func(b *testing.B) {
			g, err := landmarkrd.Grid(40, 40, 0.05, 41)
			if err != nil {
				b.Fatal(err)
			}
			li, err := landmarkrd.NewLiveIndex(g, landmarkrd.LiveOptions{
				Method: landmarkrd.BiPush,
				Batch:  landmarkrd.BatchOptions{Options: landmarkrd.Options{Seed: 41}},
				Mode:   landmarkrd.DiagExactCG,
				// Benchmarks pin the patch depth; never auto-rebase.
				MaxPatches:       -1,
				MaxPatchOverhead: -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			for i := 0; i < patches; i++ {
				u := landmarkrd.GraphUpdate{
					Op: landmarkrd.UpdateAddEdge, S: i, T: i + 43, Weight: 0.5,
				}
				if _, err := li.ApplyUpdate(ctx, u); err != nil {
					b.Fatal(err)
				}
			}
			ep := li.Pin()
			defer ep.Release()
			rng := randx.New(42)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, t := pairOn(g, rng, -1)
				if _, err := ep.FreshPairContext(ctx, s, t); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
