package landmarkrd_test

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	landmarkrd "landmarkrd"
	"landmarkrd/internal/faultinject"
)

// The fault matrix: for every hook site and every fault class, a query must
// end in exactly one of three states — a correct success, a typed error, or
// a degraded estimate with an honest bound. Never a silently wrong answer.

// faultBatchQueries is the fixed query set the matrix runs.
func faultBatchQueries(t *testing.T) (*landmarkrd.Graph, []landmarkrd.PairQuery) {
	t.Helper()
	g := loadCorpusGraph(t, "grid_14x14.edges")
	return g, []landmarkrd.PairQuery{
		{S: 0, T: 100}, {S: 5, T: 55}, {S: 1, T: 2}, {S: 190, T: 7}, {S: 42, T: 141},
	}
}

func loadCorpusGraph(t *testing.T, name string) *landmarkrd.Graph {
	t.Helper()
	g, _, err := landmarkrd.LoadEdgeList("testdata/corpus/" + name)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// sameEstimate compares everything deterministic about two estimates
// (Duration is wall time, so it is excluded).
func sameEstimate(a, b landmarkrd.Estimate) bool {
	return math.Float64bits(a.Value) == math.Float64bits(b.Value) &&
		math.Float64bits(a.ErrBound) == math.Float64bits(b.ErrBound) &&
		a.Walks == b.Walks && a.WalkSteps == b.WalkSteps &&
		a.PushOps == b.PushOps && a.LandmarkHits == b.LandmarkHits &&
		math.Float64bits(a.ResidualL1) == math.Float64bits(b.ResidualL1) &&
		a.Converged == b.Converged
}

func newFaultEngine(t *testing.T, g *landmarkrd.Graph, m landmarkrd.Method, opts landmarkrd.BatchOptions) *landmarkrd.BatchEngine {
	t.Helper()
	if opts.Options.Seed == 0 {
		opts.Options.Seed = 11
	}
	e, err := landmarkrd.NewBatchEngine(g, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestFaultMatrix drives the per-query hook sites (walk loops, push queues,
// batch workers) through all three fault classes with the estimator method
// that exercises each site.
func TestFaultMatrix(t *testing.T) {
	g, queries := faultBatchQueries(t)
	cases := []struct {
		site   faultinject.Site
		method landmarkrd.Method
	}{
		{faultinject.SiteWalkLoop, landmarkrd.AbWalk},
		{faultinject.SitePushQueue, landmarkrd.Push},
		{faultinject.SiteBatchQuery, landmarkrd.BiPush},
	}
	for _, tc := range cases {
		t.Run(string(tc.site), func(t *testing.T) {
			defer faultinject.Reset()
			engine := newFaultEngine(t, g, tc.method, landmarkrd.BatchOptions{
				Options: landmarkrd.Options{Walks: 200},
			})
			faultinject.Reset()
			baseline, err := engine.Pairs(queries)
			if err != nil {
				t.Fatal(err)
			}
			for i, r := range baseline {
				if r.Err != nil {
					t.Fatalf("baseline query %d failed: %v", i, r.Err)
				}
			}

			t.Run("error", func(t *testing.T) {
				defer faultinject.Reset()
				faultinject.Arm(tc.site, faultinject.Fault{})
				res, err := engine.Pairs(queries)
				if err != nil {
					t.Fatal(err)
				}
				if faultinject.Fires(tc.site) == 0 {
					t.Fatalf("hook %s never fired: site not wired", tc.site)
				}
				for i, r := range res {
					if r.Err == nil {
						t.Errorf("query %d: injected fault produced a success (value %g)", i, r.Estimate.Value)
						continue
					}
					if !errors.Is(r.Err, faultinject.ErrInjected) {
						t.Errorf("query %d: error %v does not match ErrInjected", i, r.Err)
					}
				}
			})

			t.Run("latency", func(t *testing.T) {
				defer faultinject.Reset()
				faultinject.Arm(tc.site, faultinject.Fault{Latency: 50 * time.Microsecond, LatencyOnly: true})
				res, err := engine.Pairs(queries)
				if err != nil {
					t.Fatal(err)
				}
				for i, r := range res {
					if r.Err != nil {
						t.Errorf("query %d: latency-only fault caused error %v", i, r.Err)
						continue
					}
					if !sameEstimate(r.Estimate, baseline[i].Estimate) {
						t.Errorf("query %d: latency-only fault changed the answer: %+v vs %+v",
							i, r.Estimate, baseline[i].Estimate)
					}
				}
			})

			t.Run("panic", func(t *testing.T) {
				defer faultinject.Reset()
				faultinject.Arm(tc.site, faultinject.Fault{Panic: "injected"})
				res, err := engine.Pairs(queries)
				if err != nil {
					t.Fatal(err)
				}
				for i, r := range res {
					if r.Err == nil {
						t.Errorf("query %d: injected panic produced a success", i)
						continue
					}
					if !errors.Is(r.Err, landmarkrd.ErrInternal) {
						t.Errorf("query %d: recovered panic %v does not match ErrInternal", i, r.Err)
					}
				}
				if engine.Stats().Panics == 0 {
					t.Error("Panics metric not incremented")
				}
				// The engine must survive: with the fault disarmed, answers
				// return to the deterministic baseline (panicked estimators
				// were poisoned, never pooled).
				faultinject.Reset()
				after, err := engine.Pairs(queries)
				if err != nil {
					t.Fatal(err)
				}
				for i, r := range after {
					if r.Err != nil {
						t.Errorf("post-panic query %d failed: %v", i, r.Err)
						continue
					}
					if !sameEstimate(r.Estimate, baseline[i].Estimate) {
						t.Errorf("post-panic query %d diverged from baseline", i)
					}
				}
			})
		})
	}
}

// TestRetryRecoversTransientFault arms a one-shot fault and proves the
// retry path absorbs it: every query succeeds, exactly the faulted query
// reports a second attempt, and the Retries counter records it.
func TestRetryRecoversTransientFault(t *testing.T) {
	defer faultinject.Reset()
	g, queries := faultBatchQueries(t)
	engine := newFaultEngine(t, g, landmarkrd.BiPush, landmarkrd.BatchOptions{
		Options:     landmarkrd.Options{Walks: 200},
		MaxAttempts: 3,
	})
	faultinject.Arm(faultinject.SiteBatchQuery, faultinject.Fault{Count: 1})
	res, err := engine.Pairs(queries)
	if err != nil {
		t.Fatal(err)
	}
	retried := 0
	for i, r := range res {
		if r.Err != nil {
			t.Errorf("query %d: transient fault not absorbed: %v", i, r.Err)
		}
		switch r.Attempts {
		case 1:
		case 2:
			retried++
			if r.Estimate.Value <= 0 {
				t.Errorf("query %d: retried answer %g, want positive", i, r.Estimate.Value)
			}
		default:
			t.Errorf("query %d: %d attempts for a one-shot fault", i, r.Attempts)
		}
	}
	if retried != 1 {
		t.Errorf("%d queries retried, want exactly 1 (fault Count=1)", retried)
	}
	if got := engine.Stats().Retries; got != 1 {
		t.Errorf("Retries metric %d, want 1", got)
	}
}

// TestRetryExhaustionSurfacesTypedError proves a persistent fault is not
// retried forever: after MaxAttempts the typed cause comes back.
func TestRetryExhaustionSurfacesTypedError(t *testing.T) {
	defer faultinject.Reset()
	g, _ := faultBatchQueries(t)
	engine := newFaultEngine(t, g, landmarkrd.BiPush, landmarkrd.BatchOptions{
		Options:     landmarkrd.Options{Walks: 100},
		MaxAttempts: 3,
	})
	faultinject.Arm(faultinject.SiteBatchQuery, faultinject.Fault{})
	res, err := engine.Pairs([]landmarkrd.PairQuery{{S: 0, T: 100}})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res[0].Err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", res[0].Err)
	}
	if res[0].Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (budget exhausted)", res[0].Attempts)
	}
}

// TestRetriesDoNotChangeFirstTrySuccesses: enabling retries must keep the
// default path byte-identical for queries that succeed on attempt one.
func TestRetriesDoNotChangeFirstTrySuccesses(t *testing.T) {
	g, queries := faultBatchQueries(t)
	plain := newFaultEngine(t, g, landmarkrd.BiPush, landmarkrd.BatchOptions{
		Options: landmarkrd.Options{Walks: 200},
	})
	withRetries := newFaultEngine(t, g, landmarkrd.BiPush, landmarkrd.BatchOptions{
		Options:     landmarkrd.Options{Walks: 200},
		MaxAttempts: 5,
	})
	a, err := plain.Pairs(queries)
	if err != nil {
		t.Fatal(err)
	}
	b, err := withRetries.Pairs(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !sameEstimate(a[i].Estimate, b[i].Estimate) {
			t.Errorf("query %d: retry-enabled engine diverged on a first-try success", i)
		}
	}
}

// TestIndexBuildFaults covers the index.build site: errors and panics
// surface typed from BuildLandmarkIndex, latency changes nothing.
func TestIndexBuildFaults(t *testing.T) {
	defer faultinject.Reset()
	g := loadCorpusGraph(t, "grid_14x14.edges")

	faultinject.Reset()
	baseline, err := landmarkrd.BuildLandmarkIndex(g, 0, landmarkrd.DiagExactCG, 1)
	if err != nil {
		t.Fatal(err)
	}

	faultinject.Arm(faultinject.SiteIndexBuild, faultinject.Fault{})
	if _, err := landmarkrd.BuildLandmarkIndex(g, 0, landmarkrd.DiagExactCG, 1); !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("error fault: err = %v, want ErrInjected", err)
	}

	faultinject.Arm(faultinject.SiteIndexBuild, faultinject.Fault{Panic: "injected"})
	if _, err := landmarkrd.BuildLandmarkIndex(g, 0, landmarkrd.DiagExactCG, 1); !errors.Is(err, landmarkrd.ErrInternal) {
		t.Errorf("panic fault: err = %v, want ErrInternal", err)
	}

	faultinject.Arm(faultinject.SiteIndexBuild, faultinject.Fault{Latency: 10 * time.Microsecond, LatencyOnly: true, Every: 50})
	idx, err := landmarkrd.BuildLandmarkIndex(g, 0, landmarkrd.DiagExactCG, 1)
	if err != nil {
		t.Fatalf("latency fault: %v", err)
	}
	for i := range idx.Diag {
		if math.Float64bits(idx.Diag[i]) != math.Float64bits(baseline.Diag[i]) {
			t.Fatalf("latency fault changed Diag[%d]", i)
		}
	}
}

// TestCGIterFaults covers the cg.iter site through the exact solver.
func TestCGIterFaults(t *testing.T) {
	defer faultinject.Reset()
	g := loadCorpusGraph(t, "grid_14x14.edges")

	faultinject.Reset()
	baseline, err := landmarkrd.Exact(g, 0, 100)
	if err != nil {
		t.Fatal(err)
	}

	faultinject.Arm(faultinject.SiteCGIter, faultinject.Fault{})
	if _, err := landmarkrd.Exact(g, 0, 100); !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("error fault: err = %v, want ErrInjected", err)
	}
	if faultinject.Hits(faultinject.SiteCGIter) == 0 {
		t.Error("cg.iter hook never reached")
	}

	faultinject.Arm(faultinject.SiteCGIter, faultinject.Fault{Latency: 10 * time.Microsecond, LatencyOnly: true})
	got, err := landmarkrd.Exact(g, 0, 100)
	if err != nil {
		t.Fatalf("latency fault: %v", err)
	}
	if math.Float64bits(got) != math.Float64bits(baseline) {
		t.Errorf("latency fault changed Exact: %g vs %g", got, baseline)
	}
}

// TestDeadlineDegradation: a context with less remaining budget than
// DegradeBelow must be answered by the degraded tier — marked Degraded,
// with an error bound that contains the exact answer.
func TestDeadlineDegradation(t *testing.T) {
	g, queries := faultBatchQueries(t)
	engine := newFaultEngine(t, g, landmarkrd.BiPush, landmarkrd.BatchOptions{
		DegradeBelow:  time.Hour, // any finite deadline triggers degradation
		DegradedWalks: 512,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := engine.PairsContext(ctx, queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Errorf("query %d: %v", i, r.Err)
			continue
		}
		if !r.Degraded {
			t.Errorf("query %d: not marked degraded", i)
		}
		if r.Estimate.ErrBound <= 0 {
			t.Errorf("query %d: degraded answer without an error bound", i)
		}
		truth, err := landmarkrd.Exact(g, queries[i].S, queries[i].T)
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(r.Estimate.Value - truth); diff > r.Estimate.ErrBound {
			t.Errorf("query %d: |%g - %g| = %g exceeds claimed bound %g",
				i, r.Estimate.Value, truth, diff, r.Estimate.ErrBound)
		}
	}
	if got := engine.Stats().Degraded; got != int64(len(queries)) {
		t.Errorf("Degraded metric %d, want %d", got, len(queries))
	}
}

// TestDegradedPairsContext is the explicit load-shedding entry point: no
// deadline required, every answer is degraded-with-bound.
func TestDegradedPairsContext(t *testing.T) {
	g, queries := faultBatchQueries(t)
	engine := newFaultEngine(t, g, landmarkrd.BiPush, landmarkrd.BatchOptions{DegradedWalks: 512})
	res, err := engine.DegradedPairsContext(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Errorf("query %d: %v", i, r.Err)
			continue
		}
		if !r.Degraded || r.Estimate.ErrBound <= 0 {
			t.Errorf("query %d: degraded=%v bound=%g, want degraded with positive bound",
				i, r.Degraded, r.Estimate.ErrBound)
		}
	}
}

// TestDegradedDeterminism: the degraded tier is as reproducible as the
// primary one.
func TestDegradedDeterminism(t *testing.T) {
	g, queries := faultBatchQueries(t)
	engine := newFaultEngine(t, g, landmarkrd.BiPush, landmarkrd.BatchOptions{})
	a, err := engine.DegradedPairsContext(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	b, err := engine.DegradedPairsContext(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !sameEstimate(a[i].Estimate, b[i].Estimate) {
			t.Errorf("query %d: degraded tier not deterministic", i)
		}
	}
}
