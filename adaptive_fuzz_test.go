package landmarkrd

// Fuzz target for the adaptive batch allocator: on arbitrary graphs and
// query pairs the adaptive path must (a) never panic, hang, or emit a
// non-finite or negative resistance, (b) stay byte-identical across worker
// counts, (c) conserve the walk budget exactly, and (d) agree with the
// fixed-budget Monte Carlo estimator to within the two runs' combined
// reported error bands — the differencing check that catches a broken
// allocator (lost moments, double-counted walks, misallocated budget) even
// when each run looks individually plausible.
//
// Run continuously with:
//
//	go test -fuzz=FuzzAdaptiveBatch -fuzztime=60s .

import (
	"errors"
	"math"
	"testing"
)

func FuzzAdaptiveBatch(f *testing.F) {
	seedCorpus(f, func(data []byte) {
		f.Add(data, uint16(1), uint16(5), uint16(9), uint16(3), uint64(7))
	})
	f.Fuzz(func(t *testing.T, data []byte, s1Raw, t1Raw, s2Raw, t2Raw uint16, seed uint64) {
		g, ok := fuzzGraph(data)
		if !ok {
			t.Skip()
		}
		opts := BatchOptions{
			Options: Options{Seed: seed, Walks: 128, MaxSteps: 4096},
			Workers: 2,
		}
		engine, err := NewBatchEngine(g, AbWalk, opts)
		if err != nil {
			if !errors.Is(err, ErrDisconnected) {
				t.Fatalf("engine: unexpected error %v", err)
			}
			return
		}
		queries := []PairQuery{
			{S: int(s1Raw) % g.N(), T: int(t1Raw) % g.N()},
			{S: int(s2Raw) % g.N(), T: int(t2Raw) % g.N()},
		}
		const totalWalks, pilotWalks = 256, 16
		aopts := AdaptiveBatchOptions{TotalWalks: totalWalks, PilotWalks: pilotWalks}
		res, err := engine.AdaptivePairs(queries, aopts)
		if err != nil {
			// Engine construction defers the connectivity check for walk
			// methods; the batch call must surface it as the typed sentinel.
			if !errors.Is(err, ErrDisconnected) {
				t.Fatalf("AdaptivePairs: unexpected error %v", err)
			}
			return
		}

		spent, sampled := 0, false
		for i, r := range res {
			if r.Err != nil {
				// Per-pair failures must be the typed conflict sentinel (the
				// default ConflictExact policy resolves them, so this only
				// survives when the exact fallback itself hit the conflict).
				if !errors.Is(r.Err, ErrLandmarkConflict) {
					t.Fatalf("query %d: unexpected error %v", i, r.Err)
				}
				continue
			}
			checkEstimate(t, "AdaptivePairs", r.Estimate.Value)
			if r.Estimate.ErrBound < 0 || math.IsNaN(r.Estimate.ErrBound) {
				t.Fatalf("query %d: bad error bound %v", i, r.Estimate.ErrBound)
			}
			if r.S == r.T && r.Estimate.Value != 0 {
				t.Fatalf("query %d: r(s,s) = %v, want 0", i, r.Estimate.Value)
			}
			if r.Estimate.Walks > 0 {
				sampled = true
				spent += r.Estimate.Walks / 2
			}
		}
		// The allocator must spend the budget exactly across the sampled
		// pairs (conflict and s==t pairs are excluded before allocation).
		if sampled && spent != totalWalks {
			t.Fatalf("budget: spent %d walk-pairs, want %d", spent, totalWalks)
		}

		// Worker-count determinism: a fresh single-worker engine with the
		// same seed must reproduce every estimate bit for bit.
		seqOpts := opts
		seqOpts.Workers = 1
		seqEngine, err := NewBatchEngine(g, AbWalk, seqOpts)
		if err != nil {
			t.Fatalf("sequential engine: %v", err)
		}
		seqRes, err := seqEngine.AdaptivePairs(queries, aopts)
		if err != nil {
			t.Fatalf("sequential AdaptivePairs: %v", err)
		}
		for i := range res {
			if (res[i].Err == nil) != (seqRes[i].Err == nil) ||
				math.Float64bits(res[i].Estimate.Value) != math.Float64bits(seqRes[i].Estimate.Value) ||
				res[i].Estimate.Walks != seqRes[i].Estimate.Walks {
				t.Fatalf("query %d differs across worker counts: %+v vs %+v",
					i, res[i].Estimate, seqRes[i].Estimate)
			}
		}

		// Differencing: the fixed-budget estimator answers the same queries
		// from an independent stream; the two estimates must land within
		// their combined error bands (plus slack for the bands' own
		// estimation noise at these small sample sizes). Both runs share
		// MaxSteps, so truncation bias cancels in the difference.
		fixed, err := Pairs(g, AbWalk, queries, BatchOptions{
			Options: Options{Seed: seed ^ 0xa5a5a5a5, Walks: 128, MaxSteps: 4096},
		})
		if err != nil {
			t.Fatalf("fixed-budget Pairs: %v", err)
		}
		for i := range queries {
			if res[i].Err != nil || fixed[i].Err != nil {
				continue
			}
			a, b := res[i].Estimate, fixed[i].Estimate
			if a.Walks == 0 || b.Walks == 0 {
				continue // answered exactly (conflict fallback) or s == t
			}
			band := 6*(a.ErrBound+b.ErrBound) + 0.25*math.Max(1, b.Value)
			if diff := math.Abs(a.Value - b.Value); diff > band {
				t.Fatalf("query %d: adaptive %v vs fixed-budget %v — off by %v, band %v",
					i, a.Value, b.Value, diff, band)
			}
		}
	})
}
