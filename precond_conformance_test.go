package landmarkrd

// Conformance for the kernel-speed paths added with the pluggable
// preconditioning work: chol/auto-preconditioned exact index builds over the
// whole golden corpus, the grouped multi-RHS conflict fallback against the
// inline exact solver, and the adaptive batch allocator through the public
// engine API.

import (
	"context"
	"math"
	"testing"

	"landmarkrd/internal/core"
)

// TestConformancePrecond builds the DiagExactCG index under every
// preconditioner mode on every corpus graph and holds each to the exact
// 1e-9 conformance tolerance against the dense oracle. The preconditioner
// may change the CG trajectory but never where it converges.
func TestConformancePrecond(t *testing.T) {
	for _, c := range conformanceCases(t) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			s := c.Pairs[0][0]
			want, err := c.O.SingleSource(s)
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range []PrecondMode{PrecondNone, PrecondChol, PrecondAuto} {
				idx, err := BuildLandmarkIndexOpts(c.G, c.Landmark, IndexBuildOptions{Precond: mode})
				if err != nil {
					t.Fatalf("%v build: %v", mode, err)
				}
				if mode != PrecondAuto && idx.Precond != mode {
					t.Errorf("requested %v, index reports %v", mode, idx.Precond)
				}
				got, err := idx.SingleSource(s, core.SingleSourceOptions{Tol: 1e-12})
				if err != nil {
					t.Fatalf("%v SingleSource: %v", mode, err)
				}
				for v := range want {
					checkClose(t, mode.String()+" single-source", got[v], want[v], exactTol)
				}
			}
		})
	}
}

// TestConformancePrecondWorkerDeterminism: a chol-preconditioned build must
// be byte-identical at any worker count on a corpus graph (the shared
// read-only factor must not introduce scheduling dependence).
func TestConformancePrecondWorkerDeterminism(t *testing.T) {
	var c conformanceCase
	found := false
	for _, cc := range conformanceCases(t) {
		if cc.Name == "grid_14x14" {
			c, found = cc, true
		}
	}
	if !found {
		t.Fatal("corpus graph grid_14x14 missing")
	}
	build := func(workers int) []float64 {
		idx, err := BuildLandmarkIndexOpts(c.G, c.Landmark, IndexBuildOptions{
			Precond: PrecondChol, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return idx.Diag
	}
	seq := build(1)
	par := build(8)
	for v := range seq {
		if math.Float64bits(seq[v]) != math.Float64bits(par[v]) {
			t.Fatalf("diag[%d]: %v (1 worker) != %v (8 workers)", v, seq[v], par[v])
		}
	}
}

// TestBatchConflictExactGrouped: under ConflictExact, landmark-touching
// queries are answered by a grouped multi-RHS solve after the batch; each
// answer must be bit-for-bit what the inline per-query ExactContext
// fallback produced before the grouping existed.
func TestBatchConflictExactGrouped(t *testing.T) {
	g, err := BarabasiAlbert(300, 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewBatchEngine(g, Push, BatchOptions{
		Options: Options{Seed: 1, Theta: 1e-6},
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	landmark := engine.Landmark()
	queries := []PairQuery{
		{S: landmark, T: (landmark + 5) % g.N()},
		{S: 7, T: 90},
		{S: (landmark + 9) % g.N(), T: landmark},
		{S: landmark, T: (landmark + 5) % g.N()}, // duplicate conflict
		{S: 11, T: 250},
	}
	results, err := engine.Pairs(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		if q.S != landmark && q.T != landmark {
			continue
		}
		r := results[i]
		if r.Err != nil {
			t.Fatalf("conflict query %d unresolved: %v", i, r.Err)
		}
		if !r.Estimate.Converged || r.Degraded {
			t.Errorf("conflict query %d: %+v", i, r.Estimate)
		}
		want, err := ExactContext(context.Background(), g, q.S, q.T)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(r.Estimate.Value) != math.Float64bits(want) {
			t.Errorf("conflict query %d: %v != inline exact %v (bitwise)", i, r.Estimate.Value, want)
		}
	}
	stats := engine.Stats()
	if stats.ExactFallbacks != 3 {
		t.Errorf("ExactFallbacks = %d, want 3", stats.ExactFallbacks)
	}
}

// TestAdaptivePairsEngine drives the adaptive allocator through the public
// batch engine: determinism across worker counts, conflict handling via the
// grouped exact path, and budget conservation.
func TestAdaptivePairsEngine(t *testing.T) {
	g, err := BarabasiAlbert(250, 3, 29)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(workers int) *BatchEngine {
		e, err := NewBatchEngine(g, AbWalk, BatchOptions{
			Options: Options{Seed: 9},
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	landmark := mk(1).Landmark()
	var queries []PairQuery
	for i := 0; len(queries) < 8; i++ {
		s, u := (i*11+1)%g.N(), (i*29+100)%g.N()
		if s == u || s == landmark || u == landmark {
			continue
		}
		queries = append(queries, PairQuery{S: s, T: u})
	}
	queries = append(queries, PairQuery{S: landmark, T: (landmark + 3) % g.N()})

	opts := AdaptiveBatchOptions{TotalWalks: 6000, PilotWalks: 48}
	ref, err := mk(1).AdaptivePairs(queries, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mk(8).AdaptivePairs(queries, opts)
	if err != nil {
		t.Fatal(err)
	}
	spent := 0
	for i := range ref {
		if ref[i].Err != nil {
			t.Fatalf("query %d: %v", i, ref[i].Err)
		}
		if math.Float64bits(ref[i].Estimate.Value) != math.Float64bits(got[i].Estimate.Value) ||
			ref[i].Estimate.Walks != got[i].Estimate.Walks {
			t.Fatalf("query %d differs across worker counts: %+v vs %+v",
				i, ref[i].Estimate, got[i].Estimate)
		}
		if i < len(queries)-1 {
			spent += ref[i].Estimate.Walks / 2
		}
	}
	if spent != opts.TotalWalks {
		t.Errorf("sampled %d walk-pairs, want %d", spent, opts.TotalWalks)
	}
	// The conflict query must be answered exactly, like Pairs would.
	last := ref[len(ref)-1]
	want, err := ExactContext(context.Background(), g, last.S, last.T)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(last.Estimate.Value) != math.Float64bits(want) {
		t.Errorf("conflict query: %v != exact %v", last.Estimate.Value, want)
	}
}
