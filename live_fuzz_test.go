package landmarkrd

// FuzzEpochUpdateStream drives the epoch-versioned live index through a
// fuzz-decoded stream of edge insertions, removals, fresh queries, and
// explicit re-bases, mirroring every mutation into a plain edge-weight map
// and cross-checking each query against a cold exact solve on the mirrored
// graph. The differential oracle catches silent Sherman-Morrison drift and
// re-base replay bugs; the structural assertions catch epoch-protocol
// violations (non-monotone sequence numbers, patches surviving a re-base,
// spurious disconnection errors).

import (
	"context"
	"errors"
	"math"
	"testing"
)

// liveFuzzMaxOps bounds each execution so the fuzzer measures coverage,
// not CG patience: every add/remove costs a grounded solve and every
// re-base a full index rebuild.
const liveFuzzMaxOps = 16

func FuzzEpochUpdateStream(f *testing.F) {
	seedCorpus(f, func(data []byte) {
		// One op stream exercising all four verbs: add, query, remove,
		// re-base, query again.
		f.Add(data, []byte{0, 2, 9, 12, 2, 0, 9, 0, 1, 2, 9, 0, 3, 0, 0, 0, 2, 1, 7, 0}, uint64(7))
	})
	f.Fuzz(func(t *testing.T, data, ops []byte, seed uint64) {
		g, ok := fuzzGraph(data)
		if !ok || g.N() < 3 || g.N() > 96 {
			t.Skip()
		}
		// Conditioning guard, tighter than FuzzDynamicDifferential's: every
		// re-base op rebuilds a full exact index (n grounded CG solves), so
		// ill-conditioned inputs both swamp the differential comparison and
		// stall the fuzzer on CG iteration counts.
		minW, maxW := math.Inf(1), 0.0
		g.ForEachEdge(func(_, _ int32, w float64) {
			minW = math.Min(minW, w)
			maxW = math.Max(maxW, w)
		})
		if maxW/minW > 1e6 {
			t.Skip()
		}
		li, err := NewLiveIndex(g, LiveOptions{
			Method: BiPush,
			Batch:  BatchOptions{Options: Options{Seed: seed}},
			Mode:   DiagExactCG,
			Tol:    1e-12,
			// Explicit re-base ops only: auto triggers would make the
			// patch-stack assertions below nondeterministic.
			MaxPatches:       -1,
			MaxPatchOverhead: -1,
		})
		if err != nil {
			if !errors.Is(err, ErrDisconnected) {
				t.Fatalf("NewLiveIndex: unexpected error %v", err)
			}
			return
		}
		// mirror tracks the true edge weights under the applied stream.
		type pair struct{ a, b int }
		mirror := map[pair]float64{}
		g.ForEachEdge(func(u, v int32, w float64) {
			a, b := int(u), int(v)
			if a > b {
				a, b = b, a
			}
			mirror[pair{a, b}] += w
		})
		buildMirror := func() (*Graph, error) {
			b := NewBuilder(g.N())
			for e, w := range mirror {
				b.AddWeightedEdge(e.a, e.b, w)
			}
			return b.Build()
		}
		// applied records live adds eligible for removal: removing only
		// previously-added conductance can never disconnect (the base edges
		// all survive), so ErrDisconnecting is a bug when it fires here.
		type applied struct {
			a, b int
			w    float64
		}
		var removable []applied

		ctx := context.Background()
		lastEpoch := li.Epoch()
		n := g.N()
		steps := 0
		for i := 0; i+4 <= len(ops) && steps < liveFuzzMaxOps; i += 4 {
			steps++
			op, aRaw, bRaw, extra := ops[i], ops[i+1], ops[i+2], ops[i+3]
			switch op % 4 {
			case 0: // add edge
				a, b := int(aRaw)%n, int(bRaw)%n
				if a == b {
					continue
				}
				w := 0.5 + float64(extra%16)/10 // [0.5, 2.0]
				res, err := li.ApplyUpdate(ctx, GraphUpdate{Op: UpdateAddEdge, S: a, T: b, Weight: w})
				if err != nil {
					t.Fatalf("op %d: add (%d,%d,%v): %v", steps, a, b, w, err)
				}
				if res.Epoch < lastEpoch {
					t.Fatalf("op %d: epoch went backwards: %d after %d", steps, res.Epoch, lastEpoch)
				}
				lastEpoch = res.Epoch
				if a > b {
					a, b = b, a
				}
				mirror[pair{a, b}] += w
				removable = append(removable, applied{a, b, w})
			case 1: // remove a previously-added conductance
				if len(removable) == 0 {
					continue
				}
				j := int(extra) % len(removable)
				ed := removable[j]
				removable = append(removable[:j], removable[j+1:]...)
				_, err := li.ApplyUpdate(ctx, GraphUpdate{Op: UpdateRemoveEdge, S: ed.a, T: ed.b, Weight: ed.w})
				if err != nil {
					// Never legitimate: the base graph is intact underneath.
					t.Fatalf("op %d: removing previously-added (%d,%d,%v): %v", steps, ed.a, ed.b, ed.w, err)
				}
				mirror[pair{ed.a, ed.b}] -= ed.w
				if mirror[pair{ed.a, ed.b}] <= 0 {
					delete(mirror, pair{ed.a, ed.b})
				}
			case 2: // fresh query vs cold oracle on the mirrored graph
				s, u := int(aRaw)%n, int(bRaw)%n
				ep := li.Pin()
				got, err := ep.FreshPairContext(ctx, s, u)
				ep.Release()
				if err != nil {
					t.Fatalf("op %d: FreshPair(%d,%d): %v", steps, s, u, err)
				}
				checkEstimate(t, "FreshPairContext", got)
				mg, err := buildMirror()
				if err != nil {
					t.Fatalf("op %d: building mirror graph: %v", steps, err)
				}
				want, err := Exact(mg, s, u)
				if err != nil {
					t.Fatalf("op %d: exact oracle on mirror: %v", steps, err)
				}
				if diff := math.Abs(got - want); diff > 1e-6*math.Max(1, want) {
					t.Fatalf("op %d: fresh r(%d,%d) = %v, oracle = %v (diff %g, %d patches)",
						steps, s, u, got, want, diff, li.PendingPatches())
				}
			case 3: // explicit re-base
				before := li.Epoch()
				seq, err := li.Rebase(ctx)
				if err != nil {
					t.Fatalf("op %d: rebase: %v", steps, err)
				}
				if seq < before {
					t.Fatalf("op %d: rebase published epoch %d after %d", steps, seq, before)
				}
				lastEpoch = seq
				if got := li.PendingPatches(); got != 0 {
					t.Fatalf("op %d: %d patches survived the re-base", steps, got)
				}
			}
		}
		// Final invariant: after folding everything, one more re-base must
		// land on a graph identical in resistance to the mirror.
		if li.PendingPatches() > 0 {
			if _, err := li.Rebase(ctx); err != nil {
				t.Fatalf("final rebase: %v", err)
			}
		}
		ep := li.Pin()
		defer ep.Release()
		if ep.Graph().N() != g.N() {
			t.Fatalf("re-based graph has %d vertices, want %d", ep.Graph().N(), g.N())
		}
	})
}
