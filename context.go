package landmarkrd

import (
	"context"

	"landmarkrd/internal/cancel"
	"landmarkrd/internal/core"
	"landmarkrd/internal/lap"
)

// ErrCanceled is returned (wrapped — test with errors.Is) by every
// context-aware query path once its context is done. The error also
// matches the underlying context cause, so
//
//	errors.Is(err, ErrCanceled)                 // "the query was aborted"
//	errors.Is(err, context.DeadlineExceeded)    // "…because it timed out"
//	errors.Is(err, context.Canceled)            // "…because the caller gave up"
//
// all hold as appropriate. The iterative kernels poll their context every
// few iterations (CG, Lanczos) or every few thousand steps/relaxations
// (walks, pushes), so an abort lands within microseconds of cancellation
// while costing under 1% on the uncancelled hot paths. Non-context APIs
// delegate with context.Background(), whose nil Done channel short-circuits
// every poll — their results stay byte-identical.
var ErrCanceled = cancel.ErrCanceled

// ExactContext is Exact with cancellation: the grounded CG solve aborts
// within a few matvecs once ctx is done, returning an error matching
// ErrCanceled and the context cause. The aborted solve is counted in
// SolverStats().Canceled along with its partial iteration work.
func ExactContext(ctx context.Context, g *Graph, s, t int) (float64, error) {
	if err := requireGraph(g); err != nil {
		return 0, err
	}
	return lap.ResistanceCGContext(ctx, g, s, t)
}

// PairContext is Pair with cancellation: the estimator's iterative kernels
// (walk loops, push queues) poll ctx and abort with an error matching
// ErrCanceled once the context is done. The partial work done before the
// abort is recorded in the estimator's Metrics as a canceled observation.
// With a context that can never cancel the result is byte-identical to
// Pair, including the consumed random stream.
func (e *Estimator) PairContext(ctx context.Context, s, t int) (Estimate, error) {
	switch e.method {
	case AbWalk:
		return e.ab.PairContext(ctx, s, t)
	case Push:
		return e.push.PairContext(ctx, s, t)
	default:
		return e.bipush.PairContext(ctx, s, t)
	}
}

// SingleSourceContext is SingleSource with cancellation: the grounded
// column solve aborts once ctx is done, returning an error matching
// ErrCanceled.
func SingleSourceContext(ctx context.Context, idx *LandmarkIndex, s int) ([]float64, error) {
	return idx.SingleSourceContext(ctx, s, core.SingleSourceOptions{})
}
