package landmarkrd_test

import (
	"math"
	"strings"
	"testing"

	landmarkrd "landmarkrd"
)

func TestPublicAPIQuickstartFlow(t *testing.T) {
	g, err := landmarkrd.BarabasiAlbert(500, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	s, u := 17, 420
	exact, err := landmarkrd.Exact(g, s, u)
	if err != nil {
		t.Fatal(err)
	}
	if exact <= 0 {
		t.Fatalf("exact r = %v", exact)
	}
	for _, m := range []landmarkrd.Method{landmarkrd.AbWalk, landmarkrd.Push, landmarkrd.BiPush} {
		est, err := landmarkrd.NewEstimator(g, m, landmarkrd.Options{Seed: 7})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if est.Method() != m {
			t.Errorf("Method() = %v, want %v", est.Method(), m)
		}
		qs, qu := s, u
		if est.Landmark() == s || est.Landmark() == u {
			qs, qu = s+1, u+1
		}
		res, err := est.Pair(qs, qu)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		want, _ := landmarkrd.Exact(g, qs, qu)
		tol := 0.05 * math.Max(want, 0.2)
		if m == landmarkrd.Push {
			tol = 1e-3
		}
		if math.Abs(res.Value-want) > tol {
			t.Errorf("%v: %v, want %v", m, res.Value, want)
		}
	}
}

func TestMethodString(t *testing.T) {
	if landmarkrd.AbWalk.String() != "abwalk" ||
		landmarkrd.Push.String() != "push" ||
		landmarkrd.BiPush.String() != "bipush" {
		t.Error("Method.String() mismatch")
	}
	if landmarkrd.Method(9).String() == "" {
		t.Error("unknown method empty string")
	}
}

func TestNewEstimatorUnknownMethod(t *testing.T) {
	g, _ := landmarkrd.BarabasiAlbert(100, 3, 1)
	if _, err := landmarkrd.NewEstimator(g, landmarkrd.Method(42), landmarkrd.Options{}); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestEstimatorLandmarkConflict(t *testing.T) {
	g, _ := landmarkrd.BarabasiAlbert(100, 3, 1)
	est, err := landmarkrd.NewEstimatorAt(g, landmarkrd.Push, 5, landmarkrd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if est.Landmark() != 5 {
		t.Errorf("Landmark() = %d", est.Landmark())
	}
	if _, err := est.Pair(5, 10); err != landmarkrd.ErrLandmarkConflict {
		t.Errorf("Pair(landmark,.) = %v", err)
	}
}

func TestGenerators(t *testing.T) {
	cases := []struct {
		name string
		gen  func() (*landmarkrd.Graph, error)
	}{
		{"ba", func() (*landmarkrd.Graph, error) { return landmarkrd.BarabasiAlbert(300, 3, 1) }},
		{"er", func() (*landmarkrd.Graph, error) { return landmarkrd.ErdosRenyi(300, 900, 1) }},
		{"grid", func() (*landmarkrd.Graph, error) { return landmarkrd.Grid(15, 20, 0.05, 1) }},
		{"ws", func() (*landmarkrd.Graph, error) { return landmarkrd.WattsStrogatz(300, 3, 0.1, 1) }},
	}
	for _, c := range cases {
		g, err := c.gen()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !g.IsConnected() {
			t.Errorf("%s not connected", c.name)
		}
	}
}

func TestConditionNumberAPI(t *testing.T) {
	ba, _ := landmarkrd.BarabasiAlbert(500, 4, 1)
	grid, _ := landmarkrd.Grid(25, 25, 0, 1)
	kBA, err := landmarkrd.ConditionNumber(ba, 1)
	if err != nil {
		t.Fatal(err)
	}
	kGrid, err := landmarkrd.ConditionNumber(grid, 1)
	if err != nil {
		t.Fatal(err)
	}
	if kGrid < 3*kBA {
		t.Errorf("grid kappa %v not much larger than BA kappa %v", kGrid, kBA)
	}
}

func TestCommuteTimeAPI(t *testing.T) {
	g, err := landmarkrd.ErdosRenyi(100, 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := landmarkrd.Exact(g, 0, 50)
	c, err := landmarkrd.CommuteTime(g, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-g.Volume()*r) > 1e-6 {
		t.Errorf("commute = %v, want %v", c, g.Volume()*r)
	}
}

func TestLandmarkIndexAPI(t *testing.T) {
	g, _ := landmarkrd.BarabasiAlbert(200, 4, 5)
	v, err := landmarkrd.SelectLandmark(g, landmarkrd.MaxDegree, 1)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := landmarkrd.BuildLandmarkIndex(g, v, landmarkrd.DiagExactCG, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := (v + 3) % g.N()
	all, err := landmarkrd.SingleSource(idx, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []int{0, 100, 199} {
		if u == s {
			continue
		}
		want, _ := landmarkrd.Exact(g, s, u)
		if math.Abs(all[u]-want) > 1e-5 {
			t.Errorf("single-source[%d] = %v, want %v", u, all[u], want)
		}
	}
}

func TestSketchAPI(t *testing.T) {
	g, _ := landmarkrd.BarabasiAlbert(200, 4, 6)
	sk, err := landmarkrd.BuildSketch(g, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := landmarkrd.Exact(g, 3, 150)
	got, err := sk.Resistance(3, 150)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want)/want > 0.5 {
		t.Errorf("sketch r = %v, want ~%v", got, want)
	}
}

func TestLoadEdgeListAPI(t *testing.T) {
	g, idOf, err := landmarkrd.ReadEdgeList(strings.NewReader("1 2\n2 3\n3 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 || len(idOf) != 3 {
		t.Errorf("n=%d m=%d ids=%d", g.N(), g.M(), len(idOf))
	}
	if _, _, err := landmarkrd.LoadEdgeList("/nonexistent/file.txt"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestBuilderAPI(t *testing.T) {
	b := landmarkrd.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddWeightedEdge(1, 2, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + 0.5
	r, _ := landmarkrd.Exact(g, 0, 2)
	if math.Abs(r-want) > 1e-8 {
		t.Errorf("series r = %v, want %v", r, want)
	}
}

func TestOptionsSeedZeroIsUsable(t *testing.T) {
	g, _ := landmarkrd.BarabasiAlbert(100, 3, 9)
	est, err := landmarkrd.NewEstimator(g, landmarkrd.BiPush, landmarkrd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, u := 1, 50
	if est.Landmark() == s || est.Landmark() == u {
		s, u = 2, 51
	}
	if _, err := est.Pair(s, u); err != nil {
		t.Fatal(err)
	}
}

func TestElectricFlowAPI(t *testing.T) {
	g, _ := landmarkrd.ErdosRenyi(150, 600, 21)
	f, err := landmarkrd.ComputeElectricFlow(g, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := landmarkrd.Exact(g, 3, 100)
	if math.Abs(f.Energy()-want) > 1e-6 {
		t.Errorf("flow energy %v, want r = %v", f.Energy(), want)
	}
	phi, err := landmarkrd.Potential(g, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs((phi[3]-phi[100])-want) > 1e-6 {
		t.Errorf("potential difference %v, want %v", phi[3]-phi[100], want)
	}
}

func TestMultiLandmarkAPI(t *testing.T) {
	g, _ := landmarkrd.BarabasiAlbert(300, 4, 22)
	m, err := landmarkrd.NewMultiLandmark(g, 3, landmarkrd.Options{Seed: 5, Walks: 800})
	if err != nil {
		t.Fatal(err)
	}
	s, u := 9, 200
	for _, v := range m.Landmarks() {
		if v == s || v == u {
			s, u = 10, 201
		}
	}
	want, _ := landmarkrd.Exact(g, s, u)
	res, err := m.Pair(s, u)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-want) > 0.05*math.Max(want, 0.2) {
		t.Errorf("multi-landmark = %v, want %v", res.Value, want)
	}
}

func TestLapSolverAPI(t *testing.T) {
	g, _ := landmarkrd.Grid(20, 20, 0, 31)
	solver, err := landmarkrd.NewLapSolver(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range [][2]int{{0, 399}, {10, 200}} {
		want, _ := landmarkrd.Exact(g, p[0], p[1])
		got, err := solver.Resistance(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("lapsolver r%v = %v, want %v", p, got, want)
		}
	}
}

func TestPairWithinEpsAPI(t *testing.T) {
	g, _ := landmarkrd.BarabasiAlbert(300, 4, 23)
	est, err := landmarkrd.NewEstimator(g, landmarkrd.Push, landmarkrd.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, u := 5, 200
	if est.Landmark() == s || est.Landmark() == u {
		s, u = 6, 201
	}
	res, err := est.PairWithinEps(s, u, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := landmarkrd.Exact(g, s, u)
	if math.Abs(res.Value-want) > 0.01 {
		t.Errorf("PairWithinEps error %v exceeds 0.01", math.Abs(res.Value-want))
	}
	bad, _ := landmarkrd.NewEstimator(g, landmarkrd.BiPush, landmarkrd.Options{Seed: 1})
	if _, err := bad.PairWithinEps(s, u, 0.01); err == nil {
		t.Error("PairWithinEps on BiPush accepted")
	}
}

func TestDynamicUpdaterAPI(t *testing.T) {
	g, _ := landmarkrd.BarabasiAlbert(100, 3, 24)
	u, err := landmarkrd.NewDynamic(g)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := u.Resistance(3, 90)
	if err := u.AddEdge(3, 90, 5); err != nil {
		t.Fatal(err)
	}
	after, err := u.Resistance(3, 90)
	if err != nil {
		t.Fatal(err)
	}
	// Parallel law: 1/r' = 1/r + 5.
	want := 1 / (1/before + 5)
	if math.Abs(after-want) > 1e-6 {
		t.Errorf("after = %v, want %v", after, want)
	}
}
