package landmarkrd_test

import (
	"bytes"
	"errors"
	"math"
	"path/filepath"
	"testing"

	landmarkrd "landmarkrd"
)

// TestSnapshotRoundTripCorpus: for every conformance corpus graph and every
// diagonal mode, a snapshot written with WriteTo and read back with
// ReadIndexFrom is Float64bits-identical to the freshly built index, both
// in the stored diagonal and in the single-source answers derived from it.
func TestSnapshotRoundTripCorpus(t *testing.T) {
	graphs, err := filepath.Glob("testdata/corpus/*.edges")
	if err != nil {
		t.Fatal(err)
	}
	if len(graphs) == 0 {
		t.Fatal("empty conformance corpus")
	}
	modes := []landmarkrd.DiagMode{landmarkrd.DiagExactCG, landmarkrd.DiagMC}
	for _, path := range graphs {
		for _, mode := range modes {
			t.Run(filepath.Base(path)+"/"+mode.String(), func(t *testing.T) {
				g, _, err := landmarkrd.LoadEdgeList(path)
				if err != nil {
					t.Fatal(err)
				}
				idx, err := landmarkrd.BuildLandmarkIndexOpts(g, g.MaxDegreeVertex(), landmarkrd.IndexBuildOptions{
					Mode: mode, Seed: 7,
				})
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if _, err := idx.WriteTo(&buf); err != nil {
					t.Fatal(err)
				}
				got, err := landmarkrd.ReadIndexFrom(&buf, g)
				if err != nil {
					t.Fatal(err)
				}
				if got.Landmark != idx.Landmark || got.Mode != idx.Mode {
					t.Fatalf("header changed: landmark %d mode %v, want %d %v",
						got.Landmark, got.Mode, idx.Landmark, idx.Mode)
				}
				for i := range idx.Diag {
					if math.Float64bits(got.Diag[i]) != math.Float64bits(idx.Diag[i]) {
						t.Fatalf("Diag[%d]: %x, want %x", i,
							math.Float64bits(got.Diag[i]), math.Float64bits(idx.Diag[i]))
					}
				}
				s := (idx.Landmark + 1) % g.N()
				a, err := landmarkrd.SingleSource(idx, s)
				if err != nil {
					t.Fatal(err)
				}
				b, err := landmarkrd.SingleSource(got, s)
				if err != nil {
					t.Fatal(err)
				}
				for i := range a {
					if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
						t.Fatalf("single-source diverged at vertex %d: %g vs %g", i, b[i], a[i])
					}
				}
			})
		}
	}
}

// TestSnapshotGraphBinding: a snapshot only loads against the graph it was
// built from; a different corpus graph is rejected with the typed mismatch
// sentinel through the public API.
func TestSnapshotGraphBinding(t *testing.T) {
	g, _, err := landmarkrd.LoadEdgeList("testdata/corpus/grid_14x14.edges")
	if err != nil {
		t.Fatal(err)
	}
	other, _, err := landmarkrd.LoadEdgeList("testdata/corpus/er_150.edges")
	if err != nil {
		t.Fatal(err)
	}
	idx, err := landmarkrd.BuildLandmarkIndex(g, 0, landmarkrd.DiagExactCG, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := landmarkrd.ReadIndexFrom(bytes.NewReader(buf.Bytes()), other); !errors.Is(err, landmarkrd.ErrSnapshotMismatch) {
		t.Errorf("foreign graph: err = %v, want ErrSnapshotMismatch", err)
	}
	if _, err := landmarkrd.ReadIndexFrom(bytes.NewReader(buf.Bytes()[:40]), g); !errors.Is(err, landmarkrd.ErrSnapshotCorrupt) {
		t.Errorf("truncated: err = %v, want ErrSnapshotCorrupt", err)
	}
}
