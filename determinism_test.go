package landmarkrd

// Seed-determinism contract, end to end: for a fixed Options.Seed, every
// method must produce byte-identical estimates — across independent runs,
// across pooled/cold/one-shot batch engines, and across ANY worker count.
// "Byte-identical" is literal: float64 bit patterns compared with
// math.Float64bits, not an epsilon. Only Duration (wall time) is excluded.

import (
	"fmt"
	"math"
	"testing"
)

// estimateKey flattens every deterministic field of an Estimate into a
// comparable string. Duration is deliberately absent.
func estimateKey(e Estimate) string {
	return fmt.Sprintf("v=%x eb=%x w=%d ws=%d po=%d lh=%d rl=%x c=%v",
		math.Float64bits(e.Value), math.Float64bits(e.ErrBound),
		e.Walks, e.WalkSteps, e.PushOps, e.LandmarkHits,
		math.Float64bits(e.ResidualL1), e.Converged)
}

func determinismGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := BarabasiAlbert(600, 3, 77)
	if err != nil {
		t.Fatalf("BarabasiAlbert: %v", err)
	}
	return g
}

// TestEstimatorSeedDeterminism runs every method twice from fresh
// estimators with the same seed and requires bit-equal estimates, and
// once with a different seed to prove the seed actually matters for the
// randomized methods.
func TestEstimatorSeedDeterminism(t *testing.T) {
	g := determinismGraph(t)
	landmark := g.MaxDegreeVertex()
	pairs := [][2]int{{2, 501}, {17, 350}, {44, 599}}
	for _, m := range []Method{AbWalk, Push, BiPush} {
		t.Run(m.String(), func(t *testing.T) {
			run := func(seed uint64) []string {
				est, err := NewEstimatorAt(g, m, landmark, Options{Seed: seed})
				if err != nil {
					t.Fatalf("NewEstimatorAt: %v", err)
				}
				var keys []string
				for _, p := range pairs {
					res, err := est.Pair(p[0], p[1])
					if err != nil {
						t.Fatalf("Pair%v: %v", p, err)
					}
					keys = append(keys, estimateKey(res))
				}
				return keys
			}
			a, b := run(42), run(42)
			for i := range a {
				if a[i] != b[i] {
					t.Errorf("pair %v differs across identical-seed runs:\n  %s\n  %s", pairs[i], a[i], b[i])
				}
			}
			if m != Push { // Push is deterministic regardless of seed
				c := run(43)
				same := true
				for i := range a {
					if a[i] != c[i] {
						same = false
					}
				}
				if same {
					t.Errorf("%v: seeds 42 and 43 produced identical results — seed is not wired through", m)
				}
			}
		})
	}
}

// TestEstimatorReseedMatchesFreshConstruction checks the Reseed contract:
// a reseeded warm estimator must answer exactly as a fresh one built with
// that seed, which is what the batch engine's pooling correctness rests on.
func TestEstimatorReseedMatchesFreshConstruction(t *testing.T) {
	g := determinismGraph(t)
	landmark := g.MaxDegreeVertex()
	for _, m := range []Method{AbWalk, Push, BiPush} {
		t.Run(m.String(), func(t *testing.T) {
			warm, err := NewEstimatorAt(g, m, landmark, Options{Seed: 5})
			if err != nil {
				t.Fatalf("NewEstimatorAt: %v", err)
			}
			// Burn some random state so Reseed has something to reset.
			if _, err := warm.Pair(3, 400); err != nil {
				t.Fatalf("warm-up Pair: %v", err)
			}
			warm.Reseed(99)
			got, err := warm.Pair(10, 222)
			if err != nil {
				t.Fatalf("Pair: %v", err)
			}
			fresh, err := NewEstimatorAt(g, m, landmark, Options{Seed: 99})
			if err != nil {
				t.Fatalf("NewEstimatorAt: %v", err)
			}
			want, err := fresh.Pair(10, 222)
			if err != nil {
				t.Fatalf("Pair: %v", err)
			}
			if estimateKey(got) != estimateKey(want) {
				t.Errorf("reseeded estimator diverges from fresh construction:\n  %s\n  %s",
					estimateKey(got), estimateKey(want))
			}
		})
	}
}

// TestBatchWorkerCountInvariance is the batch-layer determinism contract:
// the same batch at worker counts 1, 2, 3, 7 and GOMAXPROCS-default must
// be byte-identical, for every method, pooled or not.
func TestBatchWorkerCountInvariance(t *testing.T) {
	g := determinismGraph(t)
	queries := make([]PairQuery, 40)
	for i := range queries {
		queries[i] = PairQuery{S: (i*13 + 1) % g.N(), T: (i*37 + 5) % g.N()}
	}
	for _, m := range []Method{AbWalk, Push, BiPush} {
		t.Run(m.String(), func(t *testing.T) {
			var want []string
			for _, workers := range []int{1, 2, 3, 7, 0} {
				opts := BatchOptions{Options: Options{Seed: 11}, Workers: workers, PinLandmark: true, Landmark: g.MaxDegreeVertex()}
				res, err := Pairs(g, m, queries, opts)
				if err != nil {
					t.Fatalf("Pairs(workers=%d): %v", workers, err)
				}
				keys := make([]string, len(res))
				for i, r := range res {
					if r.Err != nil {
						t.Fatalf("query %d: %v", i, r.Err)
					}
					keys[i] = estimateKey(r.Estimate)
				}
				if want == nil {
					want = keys
					continue
				}
				for i := range keys {
					if keys[i] != want[i] {
						t.Fatalf("workers=%d: query %d differs from workers=1:\n  %s\n  %s",
							workers, i, keys[i], want[i])
					}
				}
			}
		})
	}
}

// TestBatchEngineWarmPoolIdentical reruns the same batch on one engine:
// run 2 executes entirely on pooled (warm) estimators yet must be
// byte-identical to run 1 and to a one-shot Pairs call.
func TestBatchEngineWarmPoolIdentical(t *testing.T) {
	g := determinismGraph(t)
	queries := make([]PairQuery, 24)
	for i := range queries {
		queries[i] = PairQuery{S: (i*7 + 2) % g.N(), T: (i*31 + 9) % g.N()}
	}
	opts := BatchOptions{Options: Options{Seed: 23}, Workers: 4, PinLandmark: true, Landmark: g.MaxDegreeVertex()}
	for _, m := range []Method{AbWalk, Push, BiPush} {
		t.Run(m.String(), func(t *testing.T) {
			engine, err := NewBatchEngine(g, m, opts)
			if err != nil {
				t.Fatalf("NewBatchEngine: %v", err)
			}
			first, err := engine.Pairs(queries)
			if err != nil {
				t.Fatalf("Pairs #1: %v", err)
			}
			warm, err := engine.Pairs(queries)
			if err != nil {
				t.Fatalf("Pairs #2: %v", err)
			}
			oneShot, err := Pairs(g, m, queries, opts)
			if err != nil {
				t.Fatalf("one-shot Pairs: %v", err)
			}
			for i := range queries {
				k1, k2, k3 := estimateKey(first[i].Estimate), estimateKey(warm[i].Estimate), estimateKey(oneShot[i].Estimate)
				if k1 != k2 {
					t.Errorf("query %d: warm pool diverged:\n  %s\n  %s", i, k1, k2)
				}
				if k1 != k3 {
					t.Errorf("query %d: one-shot diverged:\n  %s\n  %s", i, k1, k3)
				}
			}
		})
	}
}

// TestIndexBuildWorkerInvariance: the DiagMC index (the only randomized
// build mode) must be byte-identical across worker counts for a fixed
// seed, end to end through SingleSource.
func TestIndexBuildWorkerInvariance(t *testing.T) {
	g := determinismGraph(t)
	landmark := g.MaxDegreeVertex()
	var want []float64
	for _, workers := range []int{1, 3, 0} {
		idx, err := BuildLandmarkIndexOpts(g, landmark, IndexBuildOptions{Mode: DiagMC, Seed: 9, Workers: workers})
		if err != nil {
			t.Fatalf("build (workers=%d): %v", workers, err)
		}
		ss, err := SingleSource(idx, 42)
		if err != nil {
			t.Fatalf("SingleSource: %v", err)
		}
		if want == nil {
			want = ss
			continue
		}
		for v := range ss {
			if math.Float64bits(ss[v]) != math.Float64bits(want[v]) {
				t.Fatalf("workers=%d: entry %d = %x, want %x", workers, v, math.Float64bits(ss[v]), math.Float64bits(want[v]))
			}
		}
	}
}
