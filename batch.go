package landmarkrd

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"landmarkrd/internal/cancel"
	"landmarkrd/internal/core"
	"landmarkrd/internal/randx"
)

// PairQuery is one (s, t) query in a batch.
type PairQuery struct {
	S, T int
}

// PairResult is the outcome of one batch query, in input order.
type PairResult struct {
	PairQuery
	Estimate Estimate
	Err      error
}

// ConflictPolicy selects how batch queries touching the landmark are
// answered.
type ConflictPolicy int

const (
	// ConflictExact answers landmark-touching queries with the exact CG
	// solver. This is the zero value: a zero BatchOptions never fails a
	// query just because it happened to hit the landmark.
	ConflictExact ConflictPolicy = iota
	// ConflictError fails the individual query with ErrLandmarkConflict
	// (reported in its PairResult.Err; the batch itself still succeeds).
	ConflictError
)

// String implements fmt.Stringer.
func (p ConflictPolicy) String() string {
	switch p {
	case ConflictExact:
		return "exact"
	case ConflictError:
		return "error"
	default:
		return fmt.Sprintf("conflictpolicy(%d)", int(p))
	}
}

// BatchOptions configures Pairs and NewBatchEngine. The zero value is
// usable: landmark selected by strategy, GOMAXPROCS workers, and
// landmark-touching queries answered exactly.
type BatchOptions struct {
	// Options configures each worker's estimator.
	Options Options
	// Workers is the number of parallel workers (default GOMAXPROCS).
	// Worker w handles queries w, w+Workers, w+2·Workers, ..., but every
	// query draws from its own random stream derived from Options.Seed
	// and the query position, so batch results are byte-identical at any
	// worker count.
	Workers int
	// Landmark pins the landmark vertex when PinLandmark is true (0 is a
	// valid vertex, hence the explicit flag). Setting Landmark to a
	// nonzero vertex while leaving PinLandmark false is rejected with an
	// error rather than silently ignored.
	Landmark    int
	PinLandmark bool
	// OnConflict selects how queries touching the landmark are answered.
	// The zero value, ConflictExact, falls back to the exact solver.
	OnConflict ConflictPolicy
	// Metrics, when non-nil, is the shared observability sink for the
	// batch: every worker estimator records into it, and the engine
	// counts estimator builds and exact fallbacks there. When nil the
	// engine allocates its own (readable via BatchEngine.Stats).
	Metrics *Metrics
}

// BatchEngine answers repeated batches of resistance queries over one
// graph. Construction does the per-graph work once — landmark selection
// (which may rank vertices by an expensive strategy), the weighted-sampling
// index, validation — and a sync.Pool recycles per-worker estimators with
// their O(n) scratch buffers across Pairs calls, so a steady stream of
// batches pays for estimator construction only on pool misses. The shared
// Metrics sink proves the amortization: Stats().EstimatorBuilds stays flat
// across repeated calls while Queries grows.
//
// The engine is safe for concurrent use; individual pooled estimators are
// not shared between in-flight workers.
type BatchEngine struct {
	g        *Graph
	method   Method
	opts     BatchOptions
	landmark int
	seed     uint64
	pool     sync.Pool
	metrics  *Metrics
}

// NewBatchEngine validates opts, selects the landmark, and prepares the
// shared immutable state every pooled estimator reads.
func NewBatchEngine(g *Graph, m Method, opts BatchOptions) (*BatchEngine, error) {
	if err := requireGraph(g); err != nil {
		return nil, err
	}
	if opts.Landmark != 0 && !opts.PinLandmark {
		return nil, fmt.Errorf("landmarkrd: BatchOptions.Landmark = %d without PinLandmark; set PinLandmark (or leave Landmark zero to select by strategy)", opts.Landmark)
	}
	seed := opts.Options.Seed
	if seed == 0 {
		seed = 1
	}
	landmark := -1
	if opts.PinLandmark {
		landmark = opts.Landmark
		if err := g.ValidateVertex(landmark); err != nil {
			return nil, fmt.Errorf("landmarkrd: batch landmark: %w", err)
		}
	} else {
		v, err := core.SelectLandmark(g, opts.Options.Strategy, randx.New(seed))
		if err != nil {
			return nil, err
		}
		landmark = v
	}
	// The weighted-sampling index must exist before concurrent reads.
	g.EnsureSamplingIndex()
	metrics := opts.Metrics
	if metrics == nil {
		metrics = &Metrics{}
	}
	return &BatchEngine{
		g:        g,
		method:   m,
		opts:     opts,
		landmark: landmark,
		seed:     seed,
		metrics:  metrics,
	}, nil
}

// Landmark returns the landmark vertex every batch query uses.
func (e *BatchEngine) Landmark() int { return e.landmark }

// Stats snapshots the engine's shared metrics: queries, push ops, walk
// steps, estimator builds (pool misses), exact fallbacks, and latency/work
// histograms aggregated over every worker.
func (e *BatchEngine) Stats() Stats { return e.metrics.Snapshot() }

// acquire returns a pooled estimator or builds one on a pool miss.
func (e *BatchEngine) acquire() (*Estimator, error) {
	if v := e.pool.Get(); v != nil {
		return v.(*Estimator), nil
	}
	est, err := NewEstimatorAt(e.g, e.method, e.landmark, e.opts.Options)
	if err != nil {
		return nil, err
	}
	est.SetMetrics(e.metrics)
	e.metrics.EstimatorBuilds.Inc()
	return est, nil
}

// release returns an estimator to the pool.
func (e *BatchEngine) release(est *Estimator) { e.pool.Put(est) }

// Pairs answers a batch of queries in parallel. Worker w deterministically
// handles queries w, w+workers, ..., and each query i reseeds its
// estimator to a stream derived from Options.Seed and i alone, so the
// results are byte-identical across calls, across engines, across worker
// counts, and identical to the one-shot Pairs function — whether or not
// the pool had warm estimators.
func (e *BatchEngine) Pairs(queries []PairQuery) ([]PairResult, error) {
	return e.PairsContext(context.Background(), queries)
}

// PairsContext is Pairs with cancellation: every worker polls ctx between
// queries and each query's kernels poll it internally, so once the context
// is done the whole batch aborts within microseconds and the call returns
// a nil slice and an error matching ErrCanceled (and the context cause —
// errors.Is(err, context.DeadlineExceeded) distinguishes a timeout). With
// a non-cancellable ctx the results are byte-identical to Pairs.
func (e *BatchEngine) PairsContext(ctx context.Context, queries []PairQuery) ([]PairResult, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	workers := e.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}

	done := cancel.Done(ctx)
	results := make([]PairResult, len(queries))
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			est, err := e.acquire()
			if err != nil {
				errs[worker] = err
				return
			}
			defer e.release(est)
			for i := worker; i < len(queries); i += workers {
				if done != nil {
					select {
					case <-done:
						errs[worker] = cancel.Wrap(ctx.Err())
						return
					default:
					}
				}
				// Per-query streams keep the answer to query i a pure
				// function of (seed, i) — independent of which worker
				// ran it and of the worker count.
				est.Reseed(e.seed + uint64(i+1)*0x9e3779b97f4a7c15)
				q := queries[i]
				results[i].PairQuery = q
				res, err := est.PairContext(ctx, q.S, q.T)
				if errors.Is(err, ErrCanceled) {
					// A mid-query abort fails the whole batch, not just
					// this query: the caller's deadline has passed.
					errs[worker] = err
					return
				}
				// Sentinels may arrive wrapped (see the ErrDisconnected
				// contract in api.go), so match with errors.Is rather
				// than ==.
				if errors.Is(err, ErrLandmarkConflict) && e.opts.OnConflict == ConflictExact {
					v, exErr := ExactContext(ctx, e.g, q.S, q.T)
					if exErr != nil {
						// The fallback itself failed: surface its error
						// with a zero estimate — not a Converged result.
						res, err = Estimate{}, exErr
						e.metrics.FallbackErrors.Inc()
						if errors.Is(exErr, ErrCanceled) {
							errs[worker] = exErr
							return
						}
					} else {
						res, err = Estimate{Value: v, Converged: true}, nil
						e.metrics.ExactFallbacks.Inc()
					}
				}
				results[i].Estimate = res
				results[i].Err = err
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Pairs answers one batch of resistance queries in parallel. It is the
// one-shot form of BatchEngine.Pairs: workloads issuing repeated batches
// over the same graph should build a BatchEngine once and reuse it, which
// amortizes landmark selection and estimator scratch buffers.
func Pairs(g *Graph, m Method, queries []PairQuery, opts BatchOptions) ([]PairResult, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	engine, err := NewBatchEngine(g, m, opts)
	if err != nil {
		return nil, err
	}
	return engine.Pairs(queries)
}
