package landmarkrd

import (
	"fmt"
	"runtime"
	"sync"

	"landmarkrd/internal/core"
	"landmarkrd/internal/randx"
)

// PairQuery is one (s, t) query in a batch.
type PairQuery struct {
	S, T int
}

// PairResult is the outcome of one batch query, in input order.
type PairResult struct {
	PairQuery
	Estimate Estimate
	Err      error
}

// BatchOptions configures Pairs.
type BatchOptions struct {
	// Options configures each worker's estimator.
	Options Options
	// Workers is the number of parallel workers (default GOMAXPROCS).
	Workers int
	// Landmark pins the landmark; < 0 (default with the zero value being
	// 0, so use -1 explicitly) or PinLandmark false selects by strategy.
	Landmark    int
	PinLandmark bool
	// ExactOnConflict answers queries that touch the landmark with the
	// exact CG solver instead of failing them (default true behaviour is
	// opt-in via this flag to keep the zero value predictable).
	ExactOnConflict bool
}

// Pairs answers a batch of resistance queries in parallel. Each worker owns
// an independent estimator (estimators are not goroutine-safe), seeded
// deterministically from Options.Seed, so the batch is reproducible for a
// fixed worker count.
func Pairs(g *Graph, m Method, queries []PairQuery, opts BatchOptions) ([]PairResult, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	seed := opts.Options.Seed
	if seed == 0 {
		seed = 1
	}
	landmark := -1
	if opts.PinLandmark {
		landmark = opts.Landmark
		if err := g.ValidateVertex(landmark); err != nil {
			return nil, fmt.Errorf("landmarkrd: batch landmark: %w", err)
		}
	} else {
		v, err := core.SelectLandmark(g, opts.Options.Strategy, randx.New(seed))
		if err != nil {
			return nil, err
		}
		landmark = v
	}
	// Weighted sampling index must be built before concurrent reads.
	g.EnsureSamplingIndex()

	results := make([]PairResult, len(queries))
	next := make(chan int, len(queries))
	for i := range queries {
		next <- i
	}
	close(next)

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			wOpts := opts.Options
			wOpts.Seed = seed + uint64(worker)*0x9e3779b97f4a7c15
			est, err := NewEstimatorAt(g, m, landmark, wOpts)
			if err != nil {
				errs[worker] = err
				return
			}
			for i := range next {
				q := queries[i]
				results[i].PairQuery = q
				res, err := est.Pair(q.S, q.T)
				if err == ErrLandmarkConflict && opts.ExactOnConflict {
					var v float64
					v, err = Exact(g, q.S, q.T)
					res = Estimate{Value: v, Converged: true}
				}
				results[i].Estimate = res
				results[i].Err = err
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
