package landmarkrd

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"landmarkrd/internal/cancel"
	"landmarkrd/internal/core"
	"landmarkrd/internal/faultinject"
	"landmarkrd/internal/guard"
	"landmarkrd/internal/lap"
	"landmarkrd/internal/randx"
	"landmarkrd/internal/retry"
)

// PairQuery is one (s, t) query in a batch.
type PairQuery struct {
	S, T int
}

// PairResult is the outcome of one batch query, in input order.
type PairResult struct {
	PairQuery
	Estimate Estimate
	Err      error
	// Degraded marks an answer produced by the low-cost fallback tier
	// (deadline pressure or explicit load shedding). A degraded estimate
	// carries a conservative absolute error bound in Estimate.ErrBound.
	Degraded bool
	// Attempts is how many times the query ran: 1 normally, more when
	// transient failures were retried.
	Attempts int
}

// ConflictPolicy selects how batch queries touching the landmark are
// answered.
type ConflictPolicy int

const (
	// ConflictExact answers landmark-touching queries with the exact CG
	// solver. This is the zero value: a zero BatchOptions never fails a
	// query just because it happened to hit the landmark.
	ConflictExact ConflictPolicy = iota
	// ConflictError fails the individual query with ErrLandmarkConflict
	// (reported in its PairResult.Err; the batch itself still succeeds).
	ConflictError
)

// String implements fmt.Stringer.
func (p ConflictPolicy) String() string {
	switch p {
	case ConflictExact:
		return "exact"
	case ConflictError:
		return "error"
	default:
		return fmt.Sprintf("conflictpolicy(%d)", int(p))
	}
}

// BatchOptions configures Pairs and NewBatchEngine. The zero value is
// usable: landmark selected by strategy, GOMAXPROCS workers, and
// landmark-touching queries answered exactly.
type BatchOptions struct {
	// Options configures each worker's estimator.
	Options Options
	// Workers is the number of parallel workers (default GOMAXPROCS).
	// Worker w handles queries w, w+Workers, w+2·Workers, ..., but every
	// query draws from its own random stream derived from Options.Seed
	// and the query position, so batch results are byte-identical at any
	// worker count.
	Workers int
	// Landmark pins the landmark vertex when PinLandmark is true (0 is a
	// valid vertex, hence the explicit flag). Setting Landmark to a
	// nonzero vertex while leaving PinLandmark false is rejected with an
	// error rather than silently ignored.
	Landmark    int
	PinLandmark bool
	// Portfolio routes every query through a K-landmark portfolio built on
	// the same graph: each query tries landmarks in ascending cost-law
	// order (PortfolioIndex.Route), skipping any that collide with an
	// endpoint, so landmark-conflict fallbacks to the exact solver only
	// happen when every member conflicts. Mutually exclusive with
	// PinLandmark. The engine keeps one estimator pool per landmark;
	// results stay byte-identical across worker counts.
	Portfolio *PortfolioIndex
	// OnConflict selects how queries touching the landmark are answered.
	// The zero value, ConflictExact, falls back to the exact solver.
	OnConflict ConflictPolicy
	// Metrics, when non-nil, is the shared observability sink for the
	// batch: every worker estimator records into it, and the engine
	// counts estimator builds and exact fallbacks there. When nil the
	// engine allocates its own (readable via BatchEngine.Stats).
	Metrics *Metrics
	// MaxAttempts is the per-query attempt budget for transient failures
	// (default 1 = no retries). The first attempt draws from exactly the
	// stream the no-retry path uses, so enabling retries cannot change the
	// answer of a query that succeeds first try; retried attempts resample
	// from a salted stream, with jittered exponential backoff between them
	// (counted in Stats().Retries).
	MaxAttempts int
	// Retriable classifies an error as transient, i.e. worth another
	// attempt. When nil, only injected test faults are considered
	// transient; cancellation and validation errors are never retried
	// regardless.
	Retriable func(error) bool
	// DegradeBelow enables deadline-aware degradation: a query that starts
	// with less than this much context deadline remaining is answered by
	// the degraded Monte Carlo tier — a low-walk absorbed-walk estimate
	// with a conservative error bound — and marked Degraded, instead of
	// starting exact/CG work it cannot finish. Zero disables the check.
	DegradeBelow time.Duration
	// DegradedWalks is the degraded tier's per-endpoint walk budget
	// (default 128).
	DegradedWalks int
}

// BatchEngine answers repeated batches of resistance queries over one
// graph. Construction does the per-graph work once — landmark selection
// (which may rank vertices by an expensive strategy), the weighted-sampling
// index, validation — and a sync.Pool recycles per-worker estimators with
// their O(n) scratch buffers across Pairs calls, so a steady stream of
// batches pays for estimator construction only on pool misses. The shared
// Metrics sink proves the amortization: Stats().EstimatorBuilds stays flat
// across repeated calls while Queries grows.
//
// The engine is safe for concurrent use; individual pooled estimators are
// not shared between in-flight workers.
type BatchEngine struct {
	g         *Graph
	method    Method
	opts      BatchOptions
	landmark  int
	portfolio *PortfolioIndex
	seed      uint64
	// pools[j] recycles estimators for portfolio position j; without a
	// portfolio there is a single pool at position 0.
	pools   []sync.Pool
	degPool sync.Pool // degraded-tier AbWalk estimators
	metrics *Metrics
}

// NewBatchEngine validates opts, selects the landmark, and prepares the
// shared immutable state every pooled estimator reads.
func NewBatchEngine(g *Graph, m Method, opts BatchOptions) (*BatchEngine, error) {
	if err := requireGraph(g); err != nil {
		return nil, err
	}
	if opts.Landmark != 0 && !opts.PinLandmark {
		return nil, fmt.Errorf("landmarkrd: BatchOptions.Landmark = %d without PinLandmark; set PinLandmark (or leave Landmark zero to select by strategy)", opts.Landmark)
	}
	seed := opts.Options.Seed
	if seed == 0 {
		seed = 1
	}
	landmark := -1
	pools := 1
	switch {
	case opts.Portfolio != nil:
		if opts.PinLandmark {
			return nil, fmt.Errorf("landmarkrd: BatchOptions.Portfolio and PinLandmark are mutually exclusive")
		}
		if opts.Portfolio.G != g {
			return nil, fmt.Errorf("landmarkrd: BatchOptions.Portfolio was built on a different graph")
		}
		landmark = opts.Portfolio.Primary()
		pools = opts.Portfolio.K()
	case opts.PinLandmark:
		landmark = opts.Landmark
		if err := g.ValidateVertex(landmark); err != nil {
			return nil, fmt.Errorf("landmarkrd: batch landmark: %w", err)
		}
	default:
		v, err := core.SelectLandmark(g, opts.Options.Strategy, randx.New(seed))
		if err != nil {
			return nil, err
		}
		landmark = v
	}
	// The weighted-sampling index must exist before concurrent reads.
	g.EnsureSamplingIndex()
	metrics := opts.Metrics
	if metrics == nil {
		metrics = &Metrics{}
	}
	return &BatchEngine{
		g:         g,
		method:    m,
		opts:      opts,
		landmark:  landmark,
		portfolio: opts.Portfolio,
		seed:      seed,
		pools:     make([]sync.Pool, pools),
		metrics:   metrics,
	}, nil
}

// Landmark returns the landmark vertex every batch query uses; with a
// portfolio it is the primary (first-selected) landmark, and individual
// queries may route elsewhere.
func (e *BatchEngine) Landmark() int { return e.landmark }

// Graph returns the graph the engine was built on.
func (e *BatchEngine) Graph() *Graph { return e.g }

// Portfolio returns the portfolio the engine routes through, or nil.
func (e *BatchEngine) Portfolio() *PortfolioIndex { return e.portfolio }

// Stats snapshots the engine's shared metrics: queries, push ops, walk
// steps, estimator builds (pool misses), exact fallbacks, and latency/work
// histograms aggregated over every worker.
func (e *BatchEngine) Stats() Stats { return e.metrics.Snapshot() }

// landmarkAt returns the landmark vertex of portfolio position j (always
// the engine landmark without a portfolio).
func (e *BatchEngine) landmarkAt(j int) int {
	if e.portfolio != nil {
		return e.portfolio.Landmarks[j]
	}
	return e.landmark
}

// acquire returns a pooled estimator for portfolio position j or builds
// one on a pool miss.
func (e *BatchEngine) acquire(j int) (*Estimator, error) {
	if v := e.pools[j].Get(); v != nil {
		return v.(*Estimator), nil
	}
	est, err := NewEstimatorAt(e.g, e.method, e.landmarkAt(j), e.opts.Options)
	if err != nil {
		return nil, err
	}
	est.SetMetrics(e.metrics)
	e.metrics.EstimatorBuilds.Inc()
	return est, nil
}

// acquireDegraded returns a pooled degraded-tier estimator (a low-walk
// AbWalk sampler) or builds one on a pool miss.
func (e *BatchEngine) acquireDegraded() (*core.AbWalkEstimator, error) {
	if v := e.degPool.Get(); v != nil {
		return v.(*core.AbWalkEstimator), nil
	}
	walks := e.opts.DegradedWalks
	if walks <= 0 {
		walks = 128
	}
	deg, err := core.NewAbWalkEstimator(e.g, e.landmark, core.AbWalkOptions{
		Walks:    walks,
		MaxSteps: e.opts.Options.MaxSteps,
	}, randx.New(e.seed))
	if err != nil {
		return nil, err
	}
	deg.SetMetrics(e.metrics)
	e.metrics.EstimatorBuilds.Inc()
	return deg, nil
}

// defaultRetriable is the transient-error classification used when
// BatchOptions.Retriable is nil: only injected test faults qualify.
func defaultRetriable(err error) bool { return errors.Is(err, faultinject.ErrInjected) }

// fatalError marks an error that must fail the whole batch (estimator
// construction failure, mid-query cancellation), as opposed to a per-query
// error recorded in that query's PairResult.
type fatalError struct{ error }

func (f fatalError) Unwrap() error { return f.error }

// batchWorker holds one worker's pooled estimator with panic-poisoning: an
// estimator that panicked mid-query may hold arbitrarily corrupt internal
// state, so it is dropped on the floor instead of being returned to the
// pool, and the next query builds (or pool-Gets) a fresh one.
type batchWorker struct {
	e    *BatchEngine
	ests []*Estimator // one slot per portfolio position (one without)
}

// estimator returns the worker's estimator for portfolio position j,
// acquiring one if needed.
func (w *batchWorker) estimator(j int) (*Estimator, error) {
	if w.ests == nil {
		w.ests = make([]*Estimator, len(w.e.pools))
	}
	if w.ests[j] == nil {
		est, err := w.e.acquire(j)
		if err != nil {
			return nil, err
		}
		w.ests[j] = est
	}
	return w.ests[j], nil
}

// poison discards position j's estimator without returning it to the pool.
func (w *batchWorker) poison(j int) {
	if w.ests != nil {
		w.ests[j] = nil
	}
}

// close returns the healthy estimators to their pools.
func (w *batchWorker) close() {
	for j, est := range w.ests {
		if est != nil {
			w.e.pools[j].Put(est)
			w.ests[j] = nil
		}
	}
}

// attempt runs one full-fidelity attempt of query q with the given seed.
// With a portfolio it routes the query to the cheapest landmark and falls
// back across the members on conflict; without one it always uses the
// engine landmark.
func (e *BatchEngine) attempt(ctx context.Context, w *batchWorker, q PairQuery, seed uint64) (Estimate, error) {
	p := e.portfolio
	if p == nil {
		return e.attemptAt(ctx, w, 0, q, seed)
	}
	for _, j := range p.Route(q.S, q.T) {
		if v := p.Landmarks[j]; v == q.S || v == q.T {
			p.NoteFallback()
			e.metrics.RouterFallbacks.Inc()
			continue
		}
		res, err := e.attemptAt(ctx, w, j, q, seed)
		if errors.Is(err, ErrLandmarkConflict) {
			p.NoteFallback()
			e.metrics.RouterFallbacks.Inc()
			continue
		}
		if err == nil {
			p.NoteRouted(j)
			e.metrics.PortfolioQueries.Inc()
		}
		return res, err
	}
	// Every member collided with s or t; let the OnConflict policy decide
	// (ConflictExact answers with the exact solver).
	return Estimate{}, fmt.Errorf("landmarkrd: every portfolio landmark conflicts with query (%d,%d): %w", q.S, q.T, ErrLandmarkConflict)
}

// attemptAt runs one attempt of query q against portfolio position j,
// recovering a panicking estimator into a typed internal error.
func (e *BatchEngine) attemptAt(ctx context.Context, w *batchWorker, j int, q PairQuery, seed uint64) (Estimate, error) {
	est, err := w.estimator(j)
	if err != nil {
		return Estimate{}, fatalError{err}
	}
	// Per-query streams keep the answer to query i a pure function of
	// (seed, i) — independent of which worker ran it and of the worker
	// count.
	est.Reseed(seed)
	var res Estimate
	err = guard.Run(func() error {
		var perr error
		res, perr = est.PairContext(ctx, q.S, q.T)
		return perr
	})
	if errors.Is(err, guard.ErrInternal) {
		w.poison(j)
		e.metrics.Panics.Inc()
		return Estimate{}, err
	}
	return res, err
}

// attemptDegraded runs one degraded-tier attempt: a low-walk Monte Carlo
// estimate whose ErrBound is set to four CI half-widths plus a truncation
// allowance — conservative enough that the true resistance lies within
// Value ± ErrBound with overwhelming probability.
func (e *BatchEngine) attemptDegraded(ctx context.Context, q PairQuery, seed uint64) (Estimate, error) {
	deg, err := e.acquireDegraded()
	if err != nil {
		return Estimate{}, fatalError{err}
	}
	var res Estimate
	var half float64
	err = guard.Run(func() error {
		deg.Reseed(randx.New(seed ^ 0xabcdef))
		var derr error
		res, half, derr = deg.PairWithCIContext(ctx, q.S, q.T)
		return derr
	})
	if err != nil {
		if errors.Is(err, guard.ErrInternal) {
			// Poisoned: drop instead of pooling.
			e.metrics.Panics.Inc()
		} else {
			e.degPool.Put(deg)
		}
		return Estimate{}, err
	}
	e.degPool.Put(deg)
	res.ErrBound = 4 * half
	if res.Walks > 0 && res.LandmarkHits < res.Walks {
		// Truncated walks bias the estimate low by at most their share of
		// the total mass; widen the bound by that fraction of the value.
		res.ErrBound += res.Value * float64(res.Walks-res.LandmarkHits) / float64(res.Walks)
	}
	return res, nil
}

// runQuery answers query i into out, applying (in order) the retry budget
// for transient failures, the degraded tier when degrade is set, and the
// landmark-conflict fallback. It returns a non-nil error only for
// batch-fatal conditions (cancellation, estimator construction failure).
func (e *BatchEngine) runQuery(ctx context.Context, w *batchWorker, fi *faultinject.Hook, i int, q PairQuery, degrade bool, out *PairResult) error {
	qseed := e.seed + uint64(i+1)*0x9e3779b97f4a7c15
	maxAttempts := e.opts.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 1
	}
	retriable := e.opts.Retriable
	if retriable == nil {
		retriable = defaultRetriable
	}
	var jitter func() float64
	if maxAttempts > 1 {
		// The backoff jitter draws from its own per-query stream so retry
		// timing never perturbs the estimator's sampling stream.
		jitter = randx.New(qseed ^ 0x94d049bb133111eb).Float64
	}
	var res Estimate
	degraded := false
	attempts, err := retry.Do(ctx, retry.Policy{MaxAttempts: maxAttempts}, jitter, retriable,
		func() { e.metrics.Retries.Inc() },
		func(attempt int) error {
			seed := qseed
			if attempt > 1 {
				// Salted stream per retry: resampling with fresh randomness
				// is the point of retrying a Monte Carlo estimator.
				seed = qseed + uint64(attempt-1)*0x6a09e667f3bcc909
			}
			// Guard the fire itself: an injected panic at this site must
			// surface as ErrInternal, not kill the worker goroutine.
			if ferr := guard.Run(fi.Fire); ferr != nil {
				if errors.Is(ferr, guard.ErrInternal) {
					e.metrics.Panics.Inc()
				}
				return ferr
			}
			var aerr error
			if degrade {
				res, aerr = e.attemptDegraded(ctx, q, seed)
				degraded = aerr == nil
			} else {
				res, aerr = e.attempt(ctx, w, q, seed)
			}
			return aerr
		})
	out.Attempts = attempts
	var fatal fatalError
	if errors.As(err, &fatal) {
		return fatal.error
	}
	if errors.Is(err, ErrCanceled) {
		// A mid-query abort fails the whole batch, not just this query:
		// the caller's deadline has passed.
		return err
	}
	// Landmark conflicts under ConflictExact are NOT resolved here: the
	// worker leaves the conflict error in the result and pairs() answers
	// all of them afterwards in one grouped multi-RHS exact solve (see
	// resolveConflictsExact). Sentinels may arrive wrapped, so downstream
	// matching uses errors.Is rather than ==.
	if degraded && err == nil {
		out.Degraded = true
		e.metrics.Degraded.Inc()
	}
	out.Estimate = res
	out.Err = err
	return nil
}

// Pairs answers a batch of queries in parallel. Worker w deterministically
// handles queries w, w+workers, ..., and each query i reseeds its
// estimator to a stream derived from Options.Seed and i alone, so the
// results are byte-identical across calls, across engines, across worker
// counts, and identical to the one-shot Pairs function — whether or not
// the pool had warm estimators.
func (e *BatchEngine) Pairs(queries []PairQuery) ([]PairResult, error) {
	return e.PairsContext(context.Background(), queries)
}

// PairsContext is Pairs with cancellation: every worker polls ctx between
// queries and each query's kernels poll it internally, so once the context
// is done the whole batch aborts within microseconds and the call returns
// a nil slice and an error matching ErrCanceled (and the context cause —
// errors.Is(err, context.DeadlineExceeded) distinguishes a timeout). With
// a non-cancellable ctx the results are byte-identical to Pairs.
func (e *BatchEngine) PairsContext(ctx context.Context, queries []PairQuery) ([]PairResult, error) {
	return e.pairs(ctx, queries, false)
}

// DegradedPairsContext answers every query with the degraded Monte Carlo
// tier regardless of the deadline — the load-shedding entry point the
// server uses when admission pressure is high. Every successful result is
// marked Degraded and carries its error bound in Estimate.ErrBound.
func (e *BatchEngine) DegradedPairsContext(ctx context.Context, queries []PairQuery) ([]PairResult, error) {
	return e.pairs(ctx, queries, true)
}

func (e *BatchEngine) pairs(ctx context.Context, queries []PairQuery, forceDegraded bool) ([]PairResult, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	workers := e.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}

	done := cancel.Done(ctx)
	var deadline time.Time
	hasDeadline := false
	if ctx != nil {
		deadline, hasDeadline = ctx.Deadline()
	}
	// Fault hook, fired once per query attempt; nil unless armed.
	fi := faultinject.At(faultinject.SiteBatchQuery)
	results := make([]PairResult, len(queries))
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			bw := &batchWorker{e: e}
			defer bw.close()
			if e.portfolio == nil && !forceDegraded {
				// Acquire the worker's estimator up front rather than on its
				// first query. Lazy acquisition lets a fast-finishing sibling
				// return its estimator to the pool before a late-starting
				// worker's first Get, making the build count (and the "one
				// build per worker per cold batch" invariant) depend on
				// goroutine scheduling. Portfolio engines stay lazy: they
				// only build the positions routing actually touches.
				if _, err := bw.estimator(0); err != nil {
					errs[worker] = err
					return
				}
			}
			for i := worker; i < len(queries); i += workers {
				if done != nil {
					select {
					case <-done:
						errs[worker] = cancel.Wrap(ctx.Err())
						return
					default:
					}
				}
				q := queries[i]
				results[i].PairQuery = q
				degrade := forceDegraded ||
					(e.opts.DegradeBelow > 0 && hasDeadline && time.Until(deadline) < e.opts.DegradeBelow)
				if err := e.runQuery(ctx, bw, fi, i, q, degrade, &results[i]); err != nil {
					errs[worker] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if e.opts.OnConflict == ConflictExact {
		if err := e.resolveConflictsExact(ctx, results); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// resolveConflictsExact answers every pending landmark-conflict result with
// the exact CG solver, grouping queries that share a grounding vertex into
// one multi-RHS block solve (one operator sweep per iteration for the whole
// group) instead of one independent solve per query. Each answer is
// bit-for-bit what the inline ExactContext fallback would have produced:
// the grounding vertex, right-hand side, tolerance, and CG recurrence are
// identical per pair. Groups are processed in first-appearance order, so
// the pass is deterministic. It returns a non-nil error only for
// batch-fatal conditions (cancellation).
func (e *BatchEngine) resolveConflictsExact(ctx context.Context, results []PairResult) error {
	groups := make(map[int][]int)
	var order []int
	for i := range results {
		if results[i].Err == nil || !errors.Is(results[i].Err, ErrLandmarkConflict) {
			continue
		}
		v := lap.GroundVertex(e.g, results[i].S, results[i].T)
		if _, ok := groups[v]; !ok {
			order = append(order, v)
		}
		groups[v] = append(groups[v], i)
	}
	for _, v := range order {
		idxs := groups[v]
		pairs := make([][2]int, len(idxs))
		for k, i := range idxs {
			pairs[k] = [2]int{results[i].S, results[i].T}
		}
		values, perrs, err := lap.ResistanceBatchCG(ctx, e.g, v, pairs, 0)
		if err != nil {
			if errors.Is(err, ErrCanceled) {
				// A mid-solve abort fails the whole batch: the caller's
				// deadline has passed.
				return err
			}
			// The whole group failed (disconnected graph, injected fault):
			// surface the error on each pending query with a zero estimate.
			for _, i := range idxs {
				results[i].Estimate, results[i].Err = Estimate{}, err
				results[i].Degraded = false
				e.metrics.FallbackErrors.Inc()
			}
			continue
		}
		for k, i := range idxs {
			if perrs[k] != nil {
				results[i].Estimate, results[i].Err = Estimate{}, perrs[k]
				results[i].Degraded = false
				e.metrics.FallbackErrors.Inc()
				continue
			}
			results[i].Estimate = Estimate{Value: values[k], Converged: true}
			results[i].Err = nil
			results[i].Degraded = false // the conflict fallback answered exactly
			e.metrics.ExactFallbacks.Inc()
		}
	}
	return nil
}

// AdaptiveBatchOptions configures AdaptivePairs.
type AdaptiveBatchOptions struct {
	// TotalWalks is the batch-wide walk-pair budget shared across all
	// queries (default 2000 per query — the fixed-budget estimator's
	// per-pair default, now allocated where the variance is).
	TotalWalks int
	// PilotWalks is the per-query pilot round size (default 64).
	PilotWalks int
}

// AdaptivePairs answers a batch of queries with the adaptive Monte Carlo
// allocator: a pilot round measures every pair's per-walk variance, then
// the remaining walk budget goes to the hard (high-variance) pairs so all
// pairs finish at approximately equal 95% error bands (reported in
// Estimate.ErrBound). Easy pairs stop at the pilot instead of spending the
// same budget as hard ones. Results are byte-identical for a fixed engine
// seed at any worker count. Landmark-conflict queries follow the engine's
// OnConflict policy (grouped exact solves under ConflictExact).
func (e *BatchEngine) AdaptivePairs(queries []PairQuery, opts AdaptiveBatchOptions) ([]PairResult, error) {
	return e.AdaptivePairsContext(context.Background(), queries, opts)
}

// AdaptivePairsContext is AdaptivePairs with cancellation: once ctx is done
// the walk loops abort and the call returns a nil slice and an error
// matching ErrCanceled.
func (e *BatchEngine) AdaptivePairsContext(ctx context.Context, queries []PairQuery, opts AdaptiveBatchOptions) ([]PairResult, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	pairs := make([]core.AdaptivePair, len(queries))
	for i, q := range queries {
		pairs[i] = core.AdaptivePair{S: q.S, T: q.T}
	}
	ares, err := core.AdaptiveBatch(ctx, e.g, e.landmark, pairs, core.AdaptiveOptions{
		TotalWalks: opts.TotalWalks,
		PilotWalks: opts.PilotWalks,
		MaxSteps:   e.opts.Options.MaxSteps,
		Workers:    e.opts.Workers,
		Metrics:    e.metrics,
	}, e.seed)
	if err != nil {
		return nil, err
	}
	results := make([]PairResult, len(queries))
	for i, r := range ares {
		results[i] = PairResult{
			PairQuery: queries[i],
			Estimate:  r.Estimate,
			Err:       r.Err,
			Attempts:  1,
		}
	}
	if e.opts.OnConflict == ConflictExact {
		if err := e.resolveConflictsExact(ctx, results); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Pairs answers one batch of resistance queries in parallel. It is the
// one-shot form of BatchEngine.Pairs: workloads issuing repeated batches
// over the same graph should build a BatchEngine once and reuse it, which
// amortizes landmark selection and estimator scratch buffers.
func Pairs(g *Graph, m Method, queries []PairQuery, opts BatchOptions) ([]PairResult, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	engine, err := NewBatchEngine(g, m, opts)
	if err != nil {
		return nil, err
	}
	return engine.Pairs(queries)
}
