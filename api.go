// Package landmarkrd is a library for fast resistance-distance computation
// on large graphs using landmark-based algorithms, reproducing "Efficient
// Resistance Distance Computation: The Power of Landmark-based Approaches"
// (SIGMOD 2023) — see DESIGN.md for the reproduction notes.
//
// The resistance distance r(s,t) = (e_s−e_t)ᵀL†(e_s−e_t) measures how well
// connected two vertices are: it is the effective resistance of the graph
// viewed as an electrical network with unit (or weighted) conductances.
//
// # Quick start
//
//	g, _ := landmarkrd.BarabasiAlbert(10000, 4, 42)
//	est, _ := landmarkrd.NewEstimator(g, landmarkrd.BiPush, landmarkrd.Options{Seed: 1})
//	r, _ := est.Pair(17, 4242)
//	fmt.Println(r.Value)
//
// Three landmark algorithms are available through NewEstimator:
//
//   - AbWalk  — pure Monte Carlo over landmark-absorbed random walks.
//   - Push    — deterministic local push on the grounded Laplacian, with an
//     a-posteriori error bound.
//   - BiPush  — push followed by an unbiased Monte Carlo residual
//     correction; the best default.
//
// Exact values (for validation, or when n is small) come from Exact, which
// solves the grounded Laplacian system by preconditioned conjugate
// gradients. Single-source workloads use BuildLandmarkIndex + SingleSource.
package landmarkrd

import (
	"errors"
	"fmt"
	"io"

	"landmarkrd/internal/chol"
	"landmarkrd/internal/clustering"
	"landmarkrd/internal/core"
	"landmarkrd/internal/dynamic"
	"landmarkrd/internal/graph"
	"landmarkrd/internal/guard"
	"landmarkrd/internal/lap"
	"landmarkrd/internal/obs"
	"landmarkrd/internal/randx"
	"landmarkrd/internal/sketch"
)

// ErrNilGraph is returned by every public entry point handed a nil *Graph.
var ErrNilGraph = errors.New("landmarkrd: nil graph")

// ErrDisconnected is returned (possibly wrapped — test with errors.Is) by
// constructors and exact solvers when the graph is not connected. The
// resistance between vertices in different components is infinite, and no
// estimator in this module can answer it; the largest connected component
// of a raw dataset is the usual remedy (the generators already return it).
var ErrDisconnected = graph.ErrNotConnected

// requireGraph guards public entry points against a nil graph, which would
// otherwise panic deep inside a kernel.
func requireGraph(g *Graph) error {
	if g == nil {
		return ErrNilGraph
	}
	return nil
}

// ElectricFlow is the unit s→t current flow (potentials, per-edge currents,
// Kirchhoff divergence, energy = r(s,t)).
type ElectricFlow = lap.ElectricFlow

// ComputeElectricFlow solves for the unit-current electric flow from s to
// t. The flow's Energy() equals r(s, t) (Thomson's principle).
func ComputeElectricFlow(g *Graph, s, t int) (*ElectricFlow, error) {
	if err := requireGraph(g); err != nil {
		return nil, err
	}
	return lap.ComputeElectricFlow(g, s, t)
}

// Potential returns φ = L†(e_s − e_t), mean-centred; r(s,t) = φ(s) − φ(t).
func Potential(g *Graph, s, t int) ([]float64, error) {
	if err := requireGraph(g); err != nil {
		return nil, err
	}
	return lap.PotentialCG(g, s, t)
}

// Graph is an immutable undirected (optionally weighted) graph in CSR form.
type Graph = graph.Graph

// Builder accumulates edges and produces a Graph.
type Builder = graph.Builder

// NewBuilder returns a builder for a graph with n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// LoadEdgeList reads a graph from an edge-list file ("u v" or "u v w" per
// line, '#' comments). It returns the graph and the raw-id → dense-id map.
func LoadEdgeList(path string) (*Graph, map[int]int, error) { return graph.LoadEdgeList(path) }

// ReadEdgeList parses an edge list from r.
func ReadEdgeList(r io.Reader) (*Graph, map[int]int, error) { return graph.ReadEdgeList(r) }

// Generators for synthetic graphs. All return the largest connected
// component and are deterministic in seed.

// BarabasiAlbert generates a preferential-attachment graph (n vertices,
// k edges per newcomer) — hub-dominated like social networks.
func BarabasiAlbert(n, k int, seed uint64) (*Graph, error) {
	return graph.BarabasiAlbert(n, k, randx.New(seed))
}

// ErdosRenyi generates a uniform random graph with about m edges.
func ErdosRenyi(n int, m int64, seed uint64) (*Graph, error) {
	return graph.ErdosRenyiGNM(n, m, randx.New(seed))
}

// Grid generates a w x h grid with a fraction of edges removed — the
// road-network stand-in (bounded degree, poor expansion).
func Grid(w, h int, perturb float64, seed uint64) (*Graph, error) {
	return graph.Grid2D(w, h, perturb, randx.New(seed))
}

// WattsStrogatz generates a small-world ring lattice — the powergrid
// stand-in.
func WattsStrogatz(n, k int, beta float64, seed uint64) (*Graph, error) {
	return graph.WattsStrogatz(n, k, beta, randx.New(seed))
}

// Exact computes r(s,t) to solver precision (~1e-10) by a grounded
// conjugate-gradient solve. Cost is O(m·√κ)-ish per query; use it for
// validation and ground truth.
func Exact(g *Graph, s, t int) (float64, error) {
	if err := requireGraph(g); err != nil {
		return 0, err
	}
	return lap.ResistanceCG(g, s, t)
}

// CommuteTime returns the expected commute time Vol(G)·r(s,t).
func CommuteTime(g *Graph, s, t int) (float64, error) {
	if err := requireGraph(g); err != nil {
		return 0, err
	}
	return lap.CommuteTime(g, s, t)
}

// ConditionNumber estimates the condition number κ = 2/λ₂(ℒ) of the
// normalized Laplacian — the quantity that governs how hard a graph is for
// every resistance algorithm.
func ConditionNumber(g *Graph, seed uint64) (float64, error) {
	if err := requireGraph(g); err != nil {
		return 0, err
	}
	k := 120
	if g.N() < 2*k {
		k = g.N() / 2
	}
	res, err := lap.LanczosConditionNumber(g, k, randx.New(seed))
	if err != nil {
		return 0, err
	}
	return res.Kappa, nil
}

// Method selects the landmark query algorithm.
type Method int

const (
	// AbWalk is the absorbed-walk Monte Carlo estimator.
	AbWalk Method = iota
	// Push is the deterministic local push estimator.
	Push
	// BiPush is the bidirectional estimator (recommended default).
	BiPush
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case AbWalk:
		return "abwalk"
	case Push:
		return "push"
	case BiPush:
		return "bipush"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Strategy re-exports the landmark selection strategies.
type Strategy = core.Strategy

// Landmark selection strategies.
const (
	MaxDegree       = core.MaxDegree
	PageRank        = core.PageRank
	KCore           = core.KCore
	MinHitting      = core.MinHitting
	RandomVertex    = core.RandomVertex
	MinHittingExact = core.MinHittingExact
)

// Estimate is the result of a pair query.
type Estimate = core.Estimate

// Options configures NewEstimator. The zero value is usable.
type Options struct {
	// Landmark fixes the landmark vertex; -1 or unset (0 with
	// LandmarkStrategySet false) selects via Strategy. Use the
	// NewEstimatorAt constructor to pin an explicit landmark.
	Strategy Strategy
	// Seed drives all randomness (default 1).
	Seed uint64
	// Walks is the Monte Carlo sample count per endpoint
	// (AbWalk default 2000, BiPush default 500).
	Walks int
	// Theta is the push degree-normalized residual threshold
	// (Push default 1e-4, BiPush default 1e-2).
	Theta float64
	// MaxOps bounds push work; MaxSteps bounds each walk.
	MaxOps   int64
	MaxSteps int
}

// Estimator answers pairwise resistance queries with a fixed algorithm and
// landmark. It is not safe for concurrent use; create one per goroutine.
type Estimator struct {
	method   Method
	landmark int
	ab       *core.AbWalkEstimator
	push     *core.PushEstimator
	bipush   *core.BiPushEstimator
}

// NewEstimator builds an estimator, selecting the landmark with
// opts.Strategy (MaxDegree by default).
func NewEstimator(g *Graph, m Method, opts Options) (*Estimator, error) {
	if err := requireGraph(g); err != nil {
		return nil, err
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	rng := randx.New(seed)
	v, err := core.SelectLandmark(g, opts.Strategy, rng)
	if err != nil {
		return nil, err
	}
	return NewEstimatorAt(g, m, v, opts)
}

// NewEstimatorAt builds an estimator with an explicit landmark vertex.
func NewEstimatorAt(g *Graph, m Method, landmark int, opts Options) (*Estimator, error) {
	if err := requireGraph(g); err != nil {
		return nil, err
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	rng := randx.New(seed ^ 0xabcdef)
	e := &Estimator{method: m, landmark: landmark}
	var err error
	switch m {
	case AbWalk:
		e.ab, err = core.NewAbWalkEstimator(g, landmark,
			core.AbWalkOptions{Walks: opts.Walks, MaxSteps: opts.MaxSteps}, rng)
	case Push:
		e.push, err = core.NewPushEstimator(g, landmark,
			core.PushOptions{Theta: opts.Theta, MaxOps: opts.MaxOps})
	case BiPush:
		e.bipush, err = core.NewBiPushEstimator(g, landmark, core.BiPushOptions{
			PushTheta: opts.Theta, Walks: opts.Walks,
			MaxSteps: opts.MaxSteps, MaxOps: opts.MaxOps,
		}, rng)
	default:
		return nil, fmt.Errorf("landmarkrd: unknown method %v", m)
	}
	if err != nil {
		return nil, err
	}
	return e, nil
}

// Landmark returns the landmark vertex in use.
func (e *Estimator) Landmark() int { return e.landmark }

// Method returns the algorithm in use.
func (e *Estimator) Method() Method { return e.method }

// Pair estimates r(s,t). Neither endpoint may equal the landmark
// (ErrLandmarkConflict); pick another landmark or use Exact for that pair.
func (e *Estimator) Pair(s, t int) (Estimate, error) {
	switch e.method {
	case AbWalk:
		return e.ab.Pair(s, t)
	case Push:
		return e.push.Pair(s, t)
	default:
		return e.bipush.Pair(s, t)
	}
}

// ErrLandmarkConflict is returned when a query endpoint equals the landmark.
var ErrLandmarkConflict = core.ErrLandmarkConflict

// ErrInternal matches (via errors.Is) every error produced by recovering a
// worker panic — in the batch engine and in the parallel index build. The
// concrete error is a *guard.PanicError carrying the panic value and the
// goroutine stack; no panic inside a worker ever crashes the process.
var ErrInternal = guard.ErrInternal

// Metrics is the estimator observability sink: lock-free counters and
// log-scale histograms recording push operations, walk steps, residual L1
// mass, landmark hits, and per-query wall time. All recording is atomic, so
// one Metrics may be shared by many estimators across goroutines (the batch
// engine does exactly that).
type Metrics = obs.Metrics

// Stats is a point-in-time snapshot of a Metrics; it marshals to JSON and
// its String method renders it indented.
type Stats = obs.Snapshot

// Metrics returns the estimator's metrics sink (always non-nil).
func (e *Estimator) Metrics() *Metrics {
	switch e.method {
	case AbWalk:
		return e.ab.Metrics()
	case Push:
		return e.push.Metrics()
	default:
		return e.bipush.Metrics()
	}
}

// SetMetrics redirects the estimator's recording to m, e.g. one sink shared
// by a pool of estimators. Call before issuing queries, not concurrently
// with them.
func (e *Estimator) SetMetrics(m *Metrics) {
	switch e.method {
	case AbWalk:
		e.ab.SetMetrics(m)
	case Push:
		e.push.SetMetrics(m)
	default:
		e.bipush.SetMetrics(m)
	}
}

// Stats snapshots the estimator's counters: queries answered, push
// operations, walk steps, landmark hits, residual mass, and latency/work
// histograms. Safe to call while queries run on other estimators sharing
// the same sink.
func (e *Estimator) Stats() Stats { return e.Metrics().Snapshot() }

// Reseed resets the estimator's random stream to a deterministic function
// of seed, exactly as NewEstimatorAt would with Options.Seed = seed. Push
// has no randomness, so Reseed is a no-op there. The batch engine reseeds
// pooled estimators per call to keep batches reproducible.
func (e *Estimator) Reseed(seed uint64) {
	if seed == 0 {
		seed = 1
	}
	rng := randx.New(seed ^ 0xabcdef)
	switch e.method {
	case AbWalk:
		e.ab.Reseed(rng)
	case BiPush:
		e.bipush.Reseed(rng)
	}
}

// PublishMetrics exposes m's snapshots under name on the process expvar
// registry, served at /debug/vars by the cmd tools' -debug-addr endpoint.
// Re-publishing a name swaps the underlying Metrics.
func PublishMetrics(name string, m *Metrics) { obs.Publish(name, m) }

// SolverMetrics returns the process-wide metrics sink of the exact grounded
// CG solver (every Exact / index / hitting-time solve records here).
func SolverMetrics() *Metrics { return lap.SolverMetrics() }

// SolverStats snapshots the process-wide exact-solver counters (CGSolves,
// CGIterations, per-solve latency under QueryTime).
func SolverStats() Stats { return lap.SolverStats() }

// SelectLandmark picks a landmark vertex by strategy.
func SelectLandmark(g *Graph, s Strategy, seed uint64) (int, error) {
	if err := requireGraph(g); err != nil {
		return 0, err
	}
	return core.SelectLandmark(g, s, randx.New(seed))
}

// LandmarkIndex re-exports the single-source index.
type LandmarkIndex = core.Index

// DiagMode selects how the index diagonal is built.
type DiagMode = core.DiagMode

// Index diagonal build modes.
const (
	DiagExactCG = core.DiagExactCG
	DiagMC      = core.DiagMC
	DiagSketch  = core.DiagSketch
)

// PrecondMode selects the preconditioner the grounded CG solves use — in
// exact index builds and in every SingleSource query solve.
type PrecondMode = core.PrecondMode

// Preconditioner modes. PrecondJacobi (the zero value) is the historical
// default; PrecondChol trades one approximate-Cholesky factorization and
// O(n + fill) memory per landmark for drastically fewer CG iterations on
// large-κ graphs; PrecondAuto picks between them from the landmark's BFS
// eccentricity (a cheap diameter/κ proxy).
const (
	PrecondJacobi = core.PrecondJacobi
	PrecondNone   = core.PrecondNone
	PrecondChol   = core.PrecondChol
	PrecondAuto   = core.PrecondAuto
)

// ParsePrecondMode parses "none", "jacobi", "chol", or "auto" (the -precond
// flag syntax of the cmd tools).
func ParsePrecondMode(s string) (PrecondMode, error) { return core.ParsePrecondMode(s) }

// BuildLandmarkIndex precomputes r(t, landmark) for all t so that
// single-source queries need only one grounded column computation. The
// build parallelizes across GOMAXPROCS workers; use BuildLandmarkIndexOpts
// to control the worker count or collect build metrics.
func BuildLandmarkIndex(g *Graph, landmark int, mode DiagMode, seed uint64) (*LandmarkIndex, error) {
	return BuildLandmarkIndexOpts(g, landmark, IndexBuildOptions{Mode: mode, Seed: seed})
}

// IndexBuildOptions configures BuildLandmarkIndexOpts. The zero value
// builds a DiagExactCG index with seed 1 and GOMAXPROCS workers.
type IndexBuildOptions struct {
	// Mode selects the diagonal builder (DiagExactCG, DiagMC, DiagSketch).
	Mode DiagMode
	// Seed drives all randomness (default 1).
	Seed uint64
	// Workers shards the per-vertex build work across a worker pool
	// (default GOMAXPROCS; 1 forces a sequential build). For a fixed seed
	// the resulting index is byte-identical regardless of worker count.
	Workers int
	// Precond selects the CG preconditioner for the exact build and all
	// subsequent SingleSource query solves (default PrecondJacobi; see
	// PrecondMode). The resolved choice is recorded in the index's Precond
	// field.
	Precond PrecondMode
	// Metrics, when non-nil, receives the build observability: an
	// IndexBuilds increment, the build wall time in the IndexBuildTime
	// histogram, and (for DiagMC) walk-work counters merged from the
	// worker pool.
	Metrics *Metrics
}

// BuildLandmarkIndexOpts is BuildLandmarkIndex with explicit control over
// the parallel build.
func BuildLandmarkIndexOpts(g *Graph, landmark int, opts IndexBuildOptions) (*LandmarkIndex, error) {
	if err := requireGraph(g); err != nil {
		return nil, err
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	return core.BuildIndex(g, landmark, core.IndexOptions{
		Mode:        opts.Mode,
		Workers:     opts.Workers,
		Metrics:     opts.Metrics,
		Precond:     opts.Precond,
		PrecondSeed: seed,
	}, randx.New(seed))
}

// SingleSource returns r(s, t) for every t using the index.
func SingleSource(idx *LandmarkIndex, s int) ([]float64, error) {
	return idx.SingleSource(s, core.SingleSourceOptions{})
}

// LapSolver answers exact resistance queries with an amortized
// approximate-Cholesky-preconditioned CG solver: build once (nearly linear
// time), then each query is a fast preconditioned solve whose iteration
// count is (nearly) independent of the condition number.
type LapSolver = chol.Solver

// NewLapSolver builds the preconditioned solver grounded at a max-degree
// landmark.
func NewLapSolver(g *Graph, seed uint64) (*LapSolver, error) {
	if err := requireGraph(g); err != nil {
		return nil, err
	}
	v, err := core.SelectLandmark(g, core.MaxDegree, randx.New(seed))
	if err != nil {
		return nil, err
	}
	return chol.NewSolver(g, v, 0, chol.Options{Seed: seed})
}

// Sketch is the Spielman-Srivastava all-pairs resistance sketch.
type Sketch = sketch.Sketch

// BuildSketch constructs an ε-relative-error resistance sketch; any pair
// can then be queried in O(log n / ε²) time.
func BuildSketch(g *Graph, epsilon float64, seed uint64) (*Sketch, error) {
	if err := requireGraph(g); err != nil {
		return nil, err
	}
	return sketch.Build(g, sketch.Options{Epsilon: epsilon}, randx.New(seed))
}

// MultiLandmarkEstimator combines BiPush estimates over several landmarks
// (median), improving robustness to badly placed landmarks and serving
// queries that touch one of them.
type MultiLandmarkEstimator = core.MultiLandmarkEstimator

// NewMultiLandmark builds a multi-landmark BiPush estimator with the given
// number of landmarks (0 = default 3).
func NewMultiLandmark(g *Graph, landmarks int, opts Options) (*MultiLandmarkEstimator, error) {
	if err := requireGraph(g); err != nil {
		return nil, err
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	return core.NewMultiLandmarkEstimator(g, core.MultiLandmarkOptions{
		Landmarks: landmarks,
		Strategy:  opts.Strategy,
		PerLandmark: core.BiPushOptions{
			PushTheta: opts.Theta,
			Walks:     opts.Walks,
			MaxSteps:  opts.MaxSteps,
			MaxOps:    opts.MaxOps,
		},
	}, randx.New(seed))
}

// PairWithinEps answers a Push query whose deterministic error is at most
// eps, deriving the push threshold from the exact hitting times to the
// landmark (θ = eps / 2(h(s,v)+h(t,v))). Only available for Push
// estimators; the first call pays one grounded solve.
func (e *Estimator) PairWithinEps(s, t int, eps float64) (Estimate, error) {
	if e.method != Push {
		return Estimate{}, fmt.Errorf("landmarkrd: PairWithinEps requires the Push method, have %v", e.method)
	}
	return e.push.PairWithTarget(s, t, eps)
}

// Clustering is the result of resistance-embedding k-means clustering.
type Clustering = clustering.Result

// ClusterGraph partitions g into k clusters by embedding every vertex with
// its resistance distance to 2k pivot vertices and running k-means on the
// embedding. Cluster quality (conductance) is reported per cluster.
func ClusterGraph(g *Graph, k int, seed uint64) (*Clustering, error) {
	if err := requireGraph(g); err != nil {
		return nil, err
	}
	return clustering.Cluster(g, clustering.Options{K: k, Seed: seed}, randx.New(seed))
}

// DynamicUpdater maintains resistance queries under edge insertions and
// deletions via Sherman-Morrison rank-one updates — no rebuilds. Intended
// for small update streams ("what if we add this link?").
type DynamicUpdater = dynamic.Updater

// NewDynamic creates an updater over base graph g.
func NewDynamic(g *Graph) (*DynamicUpdater, error) {
	if err := requireGraph(g); err != nil {
		return nil, err
	}
	return dynamic.New(g, 0)
}
