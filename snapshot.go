package landmarkrd

import (
	"io"

	"landmarkrd/internal/core"
)

// Index snapshots: a LandmarkIndex serializes to a versioned, checksummed
// binary format (LandmarkIndex.WriteTo, an io.WriterTo) and loads back with
// ReadIndexFrom / LoadLandmarkIndex. The snapshot stores a fingerprint of
// the graph it was built from, so it can only be bound to that exact graph;
// a reloaded index answers every query Float64bits-identically to the
// freshly built one. rdserver uses snapshots for fast startup and SIGHUP
// hot-reload; rdbench and rdquery can write and reuse them via -snapshot.

// Typed snapshot rejection errors, matched with errors.Is against the error
// ReadIndexFrom / LoadLandmarkIndex return.
var (
	// ErrSnapshotCorrupt: not a snapshot, truncated, or structurally broken.
	ErrSnapshotCorrupt = core.ErrSnapshotCorrupt
	// ErrSnapshotVersion: written by an incompatible format version.
	ErrSnapshotVersion = core.ErrSnapshotVersion
	// ErrSnapshotChecksum: contents do not match the trailing CRC.
	ErrSnapshotChecksum = core.ErrSnapshotChecksum
	// ErrSnapshotMismatch: built from a different graph than the one given.
	ErrSnapshotMismatch = core.ErrSnapshotMismatch
)

// ReadIndexFrom deserializes an index snapshot from r and binds it to g,
// verifying the format version, the trailing checksum, and that the
// snapshot was built from exactly g (graph fingerprint). Failures match
// one of the ErrSnapshot* sentinels.
func ReadIndexFrom(r io.Reader, g *Graph) (*LandmarkIndex, error) {
	if err := requireGraph(g); err != nil {
		return nil, err
	}
	return core.ReadIndex(r, g)
}

// SaveLandmarkIndex writes the index snapshot to a file.
func SaveLandmarkIndex(idx *LandmarkIndex, path string) error {
	return core.SaveIndex(idx, path)
}

// LoadLandmarkIndex reads an index snapshot file and binds it to g, with
// the same verification as ReadIndexFrom.
func LoadLandmarkIndex(path string, g *Graph) (*LandmarkIndex, error) {
	if err := requireGraph(g); err != nil {
		return nil, err
	}
	return core.LoadIndex(path, g)
}
