package landmarkrd

import (
	"io"

	"landmarkrd/internal/core"
)

// Index snapshots: a LandmarkIndex serializes to a versioned, checksummed
// binary format (LandmarkIndex.WriteTo, an io.WriterTo) and loads back with
// ReadIndexFrom / LoadLandmarkIndex. The snapshot stores a fingerprint of
// the graph it was built from, so it can only be bound to that exact graph;
// a reloaded index answers every query Float64bits-identically to the
// freshly built one. rdserver uses snapshots for fast startup and SIGHUP
// hot-reload; rdbench and rdquery can write and reuse them via -snapshot.

// Typed snapshot rejection errors, matched with errors.Is against the error
// ReadIndexFrom / LoadLandmarkIndex return.
var (
	// ErrSnapshotCorrupt: not a snapshot, truncated, or structurally broken.
	ErrSnapshotCorrupt = core.ErrSnapshotCorrupt
	// ErrSnapshotVersion: written by an incompatible format version.
	ErrSnapshotVersion = core.ErrSnapshotVersion
	// ErrSnapshotChecksum: contents do not match the trailing CRC.
	ErrSnapshotChecksum = core.ErrSnapshotChecksum
	// ErrSnapshotMismatch: built from a different graph than the one given.
	ErrSnapshotMismatch = core.ErrSnapshotMismatch
)

// ReadIndexFrom deserializes an index snapshot from r and binds it to g,
// verifying the format version, the trailing checksum, and that the
// snapshot was built from exactly g (graph fingerprint). Failures match
// one of the ErrSnapshot* sentinels.
func ReadIndexFrom(r io.Reader, g *Graph) (*LandmarkIndex, error) {
	if err := requireGraph(g); err != nil {
		return nil, err
	}
	return core.ReadIndex(r, g)
}

// SaveLandmarkIndex writes the index snapshot to a file.
func SaveLandmarkIndex(idx *LandmarkIndex, path string) error {
	return core.SaveIndex(idx, path)
}

// LoadLandmarkIndex reads an index snapshot file and binds it to g, with
// the same verification as ReadIndexFrom.
func LoadLandmarkIndex(path string, g *Graph) (*LandmarkIndex, error) {
	if err := requireGraph(g); err != nil {
		return nil, err
	}
	return core.LoadIndex(path, g)
}

// Portfolio snapshots use the v3 format: the v2 layout generalized to K
// landmark columns (magic "LRDIDX3\n", same CRC-64 trailer and graph
// fingerprint binding). A PortfolioIndex serializes with its WriteTo
// method; ReadPortfolioFrom / LoadPortfolioIndex also accept a v2
// single-landmark snapshot and upgrade it to a K=1 portfolio, so existing
// snapshot files keep working when a server flips to portfolio mode.

// ReadPortfolioFrom deserializes a portfolio snapshot (v3, or v2 upgraded
// to K=1) from r and binds it to g, with the same verification as
// ReadIndexFrom. Failures match the ErrSnapshot* sentinels.
func ReadPortfolioFrom(r io.Reader, g *Graph) (*PortfolioIndex, error) {
	if err := requireGraph(g); err != nil {
		return nil, err
	}
	return core.ReadPortfolio(r, g)
}

// SavePortfolioIndex writes the portfolio snapshot (v3) to a file.
func SavePortfolioIndex(p *PortfolioIndex, path string) error {
	return core.SavePortfolio(p, path)
}

// LoadPortfolioIndex reads a portfolio snapshot file (v3, or v2 upgraded
// to K=1) and binds it to g.
func LoadPortfolioIndex(path string, g *Graph) (*PortfolioIndex, error) {
	if err := requireGraph(g); err != nil {
		return nil, err
	}
	return core.LoadPortfolio(path, g)
}
