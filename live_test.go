package landmarkrd_test

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	landmarkrd "landmarkrd"
)

func liveTestGraph(t *testing.T) *landmarkrd.Graph {
	t.Helper()
	g, err := landmarkrd.Grid(10, 10, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func liveTestQueries(n int) []landmarkrd.PairQuery {
	qs := make([]landmarkrd.PairQuery, 0, 12)
	for i := 0; i < 12; i++ {
		s, tt := (i*17)%n, (i*29+3)%n
		if s == tt {
			tt = (tt + 1) % n
		}
		qs = append(qs, landmarkrd.PairQuery{S: s, T: tt})
	}
	return qs
}

// TestLiveDifferentialEpochs is the headline differential checker: every
// batch answered at epoch E must bit-match the same batch against a cold
// BatchEngine built on E's materialized graph with identical options. It
// runs the check on the initial epoch, across streamed updates (which must
// NOT change epoch answers — they only grow the patch stack), and after an
// explicit re-base onto the patched graph.
func TestLiveDifferentialEpochs(t *testing.T) {
	g := liveTestGraph(t)
	ctx := context.Background()
	opts := landmarkrd.LiveOptions{
		Method: landmarkrd.AbWalk,
		Batch:  landmarkrd.BatchOptions{Options: landmarkrd.Options{Seed: 11, Walks: 200}, Workers: 3},
	}
	li, err := landmarkrd.NewLiveIndex(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	queries := liveTestQueries(g.N())

	checkEpochBitMatch := func(stage string) {
		ep := li.Pin()
		defer ep.Release()
		got, err := ep.PairsContext(ctx, queries)
		if err != nil {
			t.Fatalf("%s: live batch: %v", stage, err)
		}
		// Cold rebuild of epoch E's graph with the same options: answers
		// must agree to the bit.
		cold, err := landmarkrd.NewBatchEngine(ep.Graph(), opts.Method, landmarkrd.BatchOptions{
			Options: opts.Batch.Options, Workers: opts.Batch.Workers,
		})
		if err != nil {
			t.Fatalf("%s: cold engine: %v", stage, err)
		}
		want, err := cold.PairsContext(ctx, queries)
		if err != nil {
			t.Fatalf("%s: cold batch: %v", stage, err)
		}
		if cold.Landmark() != ep.Landmark() {
			t.Fatalf("%s: cold landmark %d vs live %d", stage, cold.Landmark(), ep.Landmark())
		}
		for i := range got {
			if got[i].Err != nil || want[i].Err != nil {
				t.Fatalf("%s: query %d errs: %v / %v", stage, i, got[i].Err, want[i].Err)
			}
			gb := math.Float64bits(got[i].Estimate.Value)
			wb := math.Float64bits(want[i].Estimate.Value)
			if gb != wb {
				t.Errorf("%s: query %d: live %v (bits %x) vs cold %v (bits %x)",
					stage, i, got[i].Estimate.Value, gb, want[i].Estimate.Value, wb)
			}
		}
	}

	checkEpochBitMatch("epoch-1")

	muts := []landmarkrd.GraphUpdate{
		{Op: landmarkrd.UpdateAddEdge, S: 0, T: 99, Weight: 1.5},
		{Op: landmarkrd.UpdateAddEdge, S: 5, T: 77, Weight: 0.5},
		{Op: landmarkrd.UpdateRemoveEdge, S: 0, T: 99, Weight: 1.5},
	}
	for _, u := range muts {
		if _, err := li.ApplyUpdate(ctx, u); err != nil {
			t.Fatal(err)
		}
	}
	if got := li.PendingPatches(); got != len(muts) {
		t.Fatalf("PendingPatches = %d, want %d", got, len(muts))
	}
	// Streamed updates must not perturb epoch answers.
	checkEpochBitMatch("epoch-1-patched")

	seq, err := li.Rebase(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("rebase published epoch %d, want 2", seq)
	}
	if got := li.PendingPatches(); got != 0 {
		t.Fatalf("PendingPatches after rebase = %d, want 0", got)
	}
	checkEpochBitMatch("epoch-2")
}

// TestLiveFreshMatchesOracle: the patch-aware fresh path must track the
// true resistance of the mutated graph (within solver tolerance) while the
// epoch answers stay frozen at the base graph.
func TestLiveFreshMatchesOracle(t *testing.T) {
	g := liveTestGraph(t)
	ctx := context.Background()
	li, err := landmarkrd.NewLiveIndex(g, landmarkrd.LiveOptions{Method: landmarkrd.BiPush})
	if err != nil {
		t.Fatal(err)
	}
	muts := []landmarkrd.GraphUpdate{
		{Op: landmarkrd.UpdateAddEdge, S: 3, T: 96, Weight: 2},
		{Op: landmarkrd.UpdateAddEdge, S: 10, T: 55, Weight: 0.75},
	}
	// Mirror the stream on a plain builder for ground truth.
	for _, u := range muts {
		if _, err := li.ApplyUpdate(ctx, u); err != nil {
			t.Fatal(err)
		}
	}
	b := landmarkrd.NewBuilder(g.N())
	g.ForEachEdge(func(u, v int32, w float64) { b.AddWeightedEdge(int(u), int(v), w) })
	for _, u := range muts {
		b.AddWeightedEdge(u.S, u.T, u.Weight)
	}
	truth, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ep := li.Pin()
	defer ep.Release()
	for _, pair := range [][2]int{{3, 96}, {0, 99}, {10, 55}, {ep.Landmark(), 42}} {
		want, err := landmarkrd.Exact(truth, pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		got, err := ep.FreshPairContext(ctx, pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-6*math.Max(1, want) {
			t.Errorf("fresh r%v = %v, oracle %v", pair, got, want)
		}
	}
}

// TestLiveEpochLifecycle proves the retire contract end-to-end: an epoch
// superseded by a re-base must not retire while a query pins it, must
// retire exactly once after release, and retire order follows sequence
// numbers.
func TestLiveEpochLifecycle(t *testing.T) {
	g := liveTestGraph(t)
	ctx := context.Background()
	var retired []uint64
	var mu sync.Mutex
	li, err := landmarkrd.NewLiveIndex(g, landmarkrd.LiveOptions{
		Method: landmarkrd.Push,
		OnRetire: func(seq uint64) {
			mu.Lock()
			retired = append(retired, seq)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ep := li.Pin()
	if ep.Seq() != 1 {
		t.Fatalf("pinned seq %d, want 1", ep.Seq())
	}
	if _, err := li.ApplyUpdate(ctx, landmarkrd.GraphUpdate{Op: landmarkrd.UpdateAddEdge, S: 1, T: 50, Weight: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := li.Rebase(ctx); err != nil {
		t.Fatal(err)
	}
	// Epoch 1 is superseded but pinned: still fully usable, not retired.
	mu.Lock()
	if len(retired) != 0 {
		t.Fatalf("retired %v while epoch 1 was pinned", retired)
	}
	mu.Unlock()
	if _, err := ep.PairsContext(ctx, []landmarkrd.PairQuery{{S: 0, T: 99}}); err != nil {
		t.Fatalf("query on pinned superseded epoch: %v", err)
	}
	if ep.Seq() != 1 {
		t.Fatal("pinned epoch changed identity")
	}
	ep.Release()
	ep.Release() // idempotent
	mu.Lock()
	defer mu.Unlock()
	if len(retired) != 1 || retired[0] != 1 {
		t.Fatalf("retired = %v, want [1]", retired)
	}
}

// TestLiveConcurrentStress is the N-writer/M-reader torture test: writers
// stream updates (tripping automatic re-bases), readers continuously pin
// epochs and query. Run under -race. Asserts per-reader monotone epoch
// sequences, zero query errors, and that every superseded epoch retired by
// the time the index quiesces.
func TestLiveConcurrentStress(t *testing.T) {
	g := liveTestGraph(t)
	ctx := context.Background()
	var publishes, retires atomic.Int64
	li, err := landmarkrd.NewLiveIndex(g, landmarkrd.LiveOptions{
		Method:     landmarkrd.AbWalk,
		Batch:      landmarkrd.BatchOptions{Options: landmarkrd.Options{Seed: 3, Walks: 64}, Workers: 2},
		MaxPatches: 8, // force frequent re-bases
		OnRetire:   func(uint64) { retires.Add(1) },
		OnRebase:   func(_ uint64, err error) { publishes.Add(1); _ = err },
	})
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers       = 4
		readers       = 4
		opsPerWriter  = 24
		readsPerGoros = 40
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWriter; i++ {
				s := (w*31 + i*7) % g.N()
				tt := (w*13 + i*17 + 1) % g.N()
				if s == tt {
					continue
				}
				u := landmarkrd.GraphUpdate{Op: landmarkrd.UpdateAddEdge, S: s, T: tt, Weight: 0.25}
				if _, err := li.ApplyUpdate(ctx, u); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var lastSeq uint64
			for i := 0; i < readsPerGoros; i++ {
				ep := li.Pin()
				if ep.Seq() < lastSeq {
					t.Errorf("reader %d: epoch went backwards %d → %d", r, lastSeq, ep.Seq())
				}
				lastSeq = ep.Seq()
				s := (r*41 + i*11) % g.N()
				tt := (r*23 + i*5 + 2) % g.N()
				if s != tt {
					res, err := ep.PairsContext(ctx, []landmarkrd.PairQuery{{S: s, T: tt}})
					if err != nil || res[0].Err != nil {
						t.Errorf("reader %d: %v / %v", r, err, res)
					}
					fresh, err := ep.FreshPairContext(ctx, s, tt)
					if err != nil || math.IsNaN(fresh) || fresh < 0 {
						t.Errorf("reader %d: fresh %v err %v", r, fresh, err)
					}
				}
				ep.Release()
			}
		}(r)
	}
	wg.Wait()
	li.Quiesce()

	st := li.Stats()
	if st.LiveUpdates == 0 {
		t.Error("no updates recorded")
	}
	// Every superseded epoch must have retired once all pins dropped:
	// current epoch seq = 1 + publishes, retires = publishes.
	if got, want := st.EpochRetires, st.EpochPublishes; got != want {
		t.Errorf("EpochRetires = %d, EpochPublishes = %d; want equal after quiesce", got, want)
	}
	if li.Epoch() != uint64(st.EpochPublishes)+1 {
		t.Errorf("epoch %d vs publishes %d", li.Epoch(), st.EpochPublishes)
	}
}

// TestLivePortfolioAndNoIndexModes smoke-tests the two non-default serving
// shapes through update → fresh-read → rebase → single-source.
func TestLivePortfolioAndNoIndexModes(t *testing.T) {
	g := liveTestGraph(t)
	ctx := context.Background()

	t.Run("portfolio", func(t *testing.T) {
		li, err := landmarkrd.NewLiveIndex(g, landmarkrd.LiveOptions{
			Method: landmarkrd.BiPush, PortfolioK: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := li.ApplyUpdate(ctx, landmarkrd.GraphUpdate{Op: landmarkrd.UpdateAddEdge, S: 2, T: 97, Weight: 1}); err != nil {
			t.Fatal(err)
		}
		ep := li.Pin()
		if ep.Portfolio() == nil {
			t.Fatal("portfolio mode without portfolio")
		}
		if _, err := ep.SingleSourceContext(ctx, 4); err != nil {
			t.Fatal(err)
		}
		if _, err := ep.FreshPairContext(ctx, 2, 97); err != nil {
			t.Fatal(err)
		}
		ep.Release()
		if _, err := li.Rebase(ctx); err != nil {
			t.Fatal(err)
		}
		ep2 := li.Pin()
		defer ep2.Release()
		if ep2.Seq() != 2 || ep2.Portfolio() == nil {
			t.Fatalf("post-rebase epoch %d portfolio %v", ep2.Seq(), ep2.Portfolio())
		}
	})

	t.Run("noindex", func(t *testing.T) {
		li, err := landmarkrd.NewLiveIndex(g, landmarkrd.LiveOptions{
			Method: landmarkrd.AbWalk, NoIndex: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := li.ApplyUpdate(ctx, landmarkrd.GraphUpdate{Op: landmarkrd.UpdateAddEdge, S: 0, T: 50, Weight: 2}); err != nil {
			t.Fatal(err)
		}
		ep := li.Pin()
		defer ep.Release()
		if ep.Index() != nil {
			t.Fatal("NoIndex mode built an index")
		}
		if _, err := ep.SingleSourceContext(ctx, 0); err == nil {
			t.Error("single-source succeeded without an index")
		}
		fresh, err := ep.FreshPairContext(ctx, 0, 50)
		if err != nil {
			t.Fatal(err)
		}
		if fresh <= 0 || fresh >= 0.5 {
			// 0–50 now has a direct 2 Ω⁻¹ edge: r must drop below 1/2.
			t.Errorf("fresh r(0,50) = %v, want (0, 0.5)", fresh)
		}
	})
}

func TestLiveValidationAndErrors(t *testing.T) {
	g := liveTestGraph(t)
	ctx := context.Background()

	if _, err := landmarkrd.NewLiveIndex(nil, landmarkrd.LiveOptions{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := landmarkrd.NewLiveIndex(g, landmarkrd.LiveOptions{
		Batch: landmarkrd.BatchOptions{PinLandmark: true},
	}); err == nil {
		t.Error("PinLandmark in Batch accepted")
	}
	if _, err := landmarkrd.NewLiveIndex(g, landmarkrd.LiveOptions{PortfolioK: 2,
		InitialIndex: &landmarkrd.LandmarkIndex{}}); err == nil {
		t.Error("InitialIndex with PortfolioK accepted")
	}

	li, err := landmarkrd.NewLiveIndex(g, landmarkrd.LiveOptions{Method: landmarkrd.Push})
	if err != nil {
		t.Fatal(err)
	}
	bad := []landmarkrd.GraphUpdate{
		{Op: landmarkrd.UpdateAddEdge, S: 0, T: 1, Weight: 0},
		{Op: landmarkrd.UpdateAddEdge, S: 0, T: 1, Weight: math.Inf(1)},
		{Op: landmarkrd.UpdateAddEdge, S: 0, T: 1, Weight: math.NaN()},
		{Op: landmarkrd.UpdateAddEdge, S: 0, T: 0, Weight: 1},
		{Op: landmarkrd.UpdateAddEdge, S: 0, T: 5000, Weight: 1},
		{Op: landmarkrd.UpdateOp(9), S: 0, T: 1, Weight: 1},
	}
	for i, u := range bad {
		if _, err := li.ApplyUpdate(ctx, u); err == nil {
			t.Errorf("bad update %d accepted", i)
		}
	}
	if li.PendingPatches() != 0 {
		t.Error("rejected updates left patches behind")
	}

	// A path graph's bridge removal must surface the typed sentinel.
	pb := landmarkrd.NewBuilder(30)
	for i := 0; i < 29; i++ {
		pb.AddEdge(i, i+1)
	}
	pg, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	pli, err := landmarkrd.NewLiveIndex(pg, landmarkrd.LiveOptions{Method: landmarkrd.Push})
	if err != nil {
		t.Fatal(err)
	}
	_, err = pli.ApplyUpdate(ctx, landmarkrd.GraphUpdate{Op: landmarkrd.UpdateRemoveEdge, S: 10, T: 11, Weight: 1})
	if !errors.Is(err, landmarkrd.ErrDisconnecting) {
		t.Fatalf("bridge removal err = %v, want ErrDisconnecting", err)
	}
}

// TestLivePublishIndexHotReload covers the unified SIGHUP path: publishing
// a prebuilt index swaps the serving graph and drops pending patches, and
// the superseded epoch retires once unpinned.
func TestLivePublishIndexHotReload(t *testing.T) {
	g := liveTestGraph(t)
	ctx := context.Background()
	var retires atomic.Int64
	li, err := landmarkrd.NewLiveIndex(g, landmarkrd.LiveOptions{
		Method:   landmarkrd.BiPush,
		OnRetire: func(uint64) { retires.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := li.ApplyUpdate(ctx, landmarkrd.GraphUpdate{Op: landmarkrd.UpdateAddEdge, S: 0, T: 9, Weight: 1}); err != nil {
		t.Fatal(err)
	}

	g2, err := landmarkrd.Grid(8, 8, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	idx2, err := landmarkrd.BuildLandmarkIndexOpts(g2, 0, landmarkrd.IndexBuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := li.PublishIndex(idx2)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("publish seq %d, want 2", seq)
	}
	if got := li.PendingPatches(); got != 0 {
		t.Fatalf("pending patches after reload = %d, want 0 (snapshot is authoritative)", got)
	}
	ep := li.Pin()
	defer ep.Release()
	if ep.Graph() != g2 {
		t.Fatal("reload did not adopt the new graph")
	}
	if ep.Landmark() != 0 || ep.Index() != idx2 {
		t.Fatalf("reload landmark %d index %p, want pinned snapshot index", ep.Landmark(), ep.Index())
	}
	if retires.Load() != 1 {
		t.Fatalf("retires = %d, want 1", retires.Load())
	}
	// Portfolio publish on an index-mode live index must be rejected.
	if _, err := li.PublishPortfolio(nil); err == nil {
		t.Error("nil portfolio accepted")
	}
}

// TestLiveFingerprint: the fingerprint identifies the epoch's materialized
// graph — stable while patches accumulate (epoch answers don't see them),
// changed by a re-base, and equal to a cold fingerprint of the same graph.
// This is the contract the serving tier's result cache keys on.
func TestLiveFingerprint(t *testing.T) {
	g := liveTestGraph(t)
	ctx := context.Background()
	li, err := landmarkrd.NewLiveIndex(g, landmarkrd.LiveOptions{
		Method: landmarkrd.AbWalk,
		Batch:  landmarkrd.BatchOptions{Options: landmarkrd.Options{Seed: 5, Walks: 100}},
	})
	if err != nil {
		t.Fatal(err)
	}
	fp0 := li.Fingerprint()
	if fp0 != g.Fingerprint() {
		t.Fatalf("live fingerprint %#x != graph fingerprint %#x", fp0, g.Fingerprint())
	}
	ep := li.Pin()
	if ep.Fingerprint() != fp0 {
		t.Fatalf("epoch fingerprint %#x != index fingerprint %#x", ep.Fingerprint(), fp0)
	}
	ep.Release()

	if _, err := li.ApplyUpdate(ctx, landmarkrd.GraphUpdate{Op: landmarkrd.UpdateAddEdge, S: 0, T: 57, Weight: 1.5}); err != nil {
		t.Fatal(err)
	}
	if li.Fingerprint() != fp0 {
		t.Fatal("patch changed the epoch fingerprint; epoch answers did not change")
	}
	if _, err := li.Rebase(ctx); err != nil {
		t.Fatal(err)
	}
	fp1 := li.Fingerprint()
	if fp1 == fp0 {
		t.Fatal("re-base onto a mutated graph kept the old fingerprint; stale cache entries would be served")
	}
	ep = li.Pin()
	defer ep.Release()
	if ep.Fingerprint() != fp1 || ep.Fingerprint() != ep.Graph().Fingerprint() {
		t.Fatalf("post-rebase epoch fingerprint %#x, want %#x (= graph's)", ep.Fingerprint(), fp1)
	}
}

// TestLiveLandmarksPinnedAcrossRebase: a replica serving a shard subset
// (explicit LiveOptions.Landmarks) must keep exactly those vertices through
// a re-base, or the fleet's shard assignment would silently drift.
func TestLiveLandmarksPinnedAcrossRebase(t *testing.T) {
	g := liveTestGraph(t)
	ctx := context.Background()
	want := []int{3, 41, 77}
	li, err := landmarkrd.NewLiveIndex(g, landmarkrd.LiveOptions{
		Method:     landmarkrd.AbWalk,
		Batch:      landmarkrd.BatchOptions{Options: landmarkrd.Options{Seed: 5, Walks: 100}},
		PortfolioK: len(want),
		Landmarks:  append([]int(nil), want...),
	})
	if err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		ep := li.Pin()
		defer ep.Release()
		pf := ep.Portfolio()
		if pf == nil {
			t.Fatalf("%s: no portfolio", stage)
		}
		if len(pf.Landmarks) != len(want) {
			t.Fatalf("%s: portfolio has %d landmarks, want %d", stage, len(pf.Landmarks), len(want))
		}
		for i, v := range want {
			if pf.Landmarks[i] != v {
				t.Fatalf("%s: landmark[%d] = %d, want %d", stage, i, pf.Landmarks[i], v)
			}
		}
	}
	check("initial")
	if _, err := li.ApplyUpdate(ctx, landmarkrd.GraphUpdate{Op: landmarkrd.UpdateAddEdge, S: 1, T: 90, Weight: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := li.Rebase(ctx); err != nil {
		t.Fatal(err)
	}
	check("post-rebase")

	// Landmarks without portfolio mode is a configuration error.
	if _, err := landmarkrd.NewLiveIndex(g, landmarkrd.LiveOptions{Landmarks: []int{1}}); err == nil {
		t.Error("Landmarks without PortfolioK accepted")
	}
}
