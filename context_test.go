package landmarkrd_test

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	landmarkrd "landmarkrd"
)

const cancelCorpusGraph = "testdata/corpus/grid_14x14.edges"

func loadCancelGraph(t *testing.T) *landmarkrd.Graph {
	t.Helper()
	g, _, err := landmarkrd.LoadEdgeList(cancelCorpusGraph)
	if err != nil {
		t.Fatalf("loading %s: %v", cancelCorpusGraph, err)
	}
	return g
}

// TestKernelsHonorCanceledContext runs every iterative kernel behind the
// public API with an already-canceled context and asserts each aborts with
// an error matching both ErrCanceled and the context cause, returning no
// result.
func TestKernelsHonorCanceledContext(t *testing.T) {
	g := loadCancelGraph(t)
	ctx, cancelFn := context.WithCancel(context.Background())
	cancelFn()

	estimator := func(m landmarkrd.Method) func() error {
		return func() error {
			est, err := landmarkrd.NewEstimator(g, m, landmarkrd.Options{Seed: 3})
			if err != nil {
				return err
			}
			res, err := est.PairContext(ctx, 0, 100)
			if err == nil {
				return nil
			}
			if res.Value != 0 {
				t.Errorf("%v: canceled query still produced value %g", m, res.Value)
			}
			return err
		}
	}
	cases := []struct {
		name string
		run  func() error
	}{
		{"exact-cg", func() error {
			v, err := landmarkrd.ExactContext(ctx, g, 0, 100)
			if err == nil {
				return nil
			}
			if v != 0 {
				t.Errorf("exact: canceled query still produced value %g", v)
			}
			return err
		}},
		{"abwalk", estimator(landmarkrd.AbWalk)},
		{"push", estimator(landmarkrd.Push)},
		{"bipush", estimator(landmarkrd.BiPush)},
		{"singlesource", func() error {
			idx, err := landmarkrd.BuildLandmarkIndex(g, 0, landmarkrd.DiagExactCG, 3)
			if err != nil {
				return err
			}
			values, err := landmarkrd.SingleSourceContext(ctx, idx, 5)
			if err == nil {
				return nil
			}
			if values != nil {
				t.Error("singlesource: canceled query still returned values")
			}
			return err
		}},
		{"batch", func() error {
			engine, err := landmarkrd.NewBatchEngine(g, landmarkrd.BiPush, landmarkrd.BatchOptions{})
			if err != nil {
				return err
			}
			results, err := engine.PairsContext(ctx, []landmarkrd.PairQuery{{S: 0, T: 100}, {S: 1, T: 50}})
			if err == nil {
				return nil
			}
			if results != nil {
				t.Error("batch: canceled call still returned results")
			}
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run()
			if !errors.Is(err, landmarkrd.ErrCanceled) {
				t.Fatalf("err = %v, want ErrCanceled", err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Errorf("err = %v does not match context.Canceled", err)
			}
			if errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("err = %v wrongly matches context.DeadlineExceeded", err)
			}
		})
	}
}

// TestPairsContextExpiredDeadline is the acceptance scenario: a batch under
// an expired deadline on the corpus grid graph returns ErrCanceled whose
// cause is context.DeadlineExceeded, without completing any solve.
func TestPairsContextExpiredDeadline(t *testing.T) {
	g := loadCancelGraph(t)
	engine, err := landmarkrd.NewBatchEngine(g, landmarkrd.BiPush, landmarkrd.BatchOptions{
		Options: landmarkrd.Options{Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancelFn := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancelFn()

	queries := make([]landmarkrd.PairQuery, 64)
	for i := range queries {
		queries[i] = landmarkrd.PairQuery{S: i % g.N(), T: (i*7 + 3) % g.N()}
	}
	results, err := engine.PairsContext(ctx, queries)
	if results != nil {
		t.Error("expired deadline still returned results")
	}
	if !errors.Is(err, landmarkrd.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v does not match context.DeadlineExceeded", err)
	}
	// The abort happened before any query recorded work.
	if stats := engine.Stats(); stats.Queries != 0 {
		t.Errorf("engine answered %d queries under an expired deadline", stats.Queries)
	}
}

// TestContextPathsAreByteIdentical pins the delegation contract: the
// non-context APIs and the context APIs under context.Background() consume
// identical random streams and produce bit-equal values.
func TestContextPathsAreByteIdentical(t *testing.T) {
	g := loadCancelGraph(t)
	for _, m := range []landmarkrd.Method{landmarkrd.AbWalk, landmarkrd.Push, landmarkrd.BiPush} {
		plain, err := landmarkrd.NewEstimator(g, m, landmarkrd.Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		withCtx, err := landmarkrd.NewEstimator(g, m, landmarkrd.Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		for _, pair := range [][2]int{{0, 100}, {3, 77}, {50, 150}} {
			a, err := plain.Pair(pair[0], pair[1])
			if err != nil {
				t.Fatalf("%v Pair%v: %v", m, pair, err)
			}
			b, err := withCtx.PairContext(context.Background(), pair[0], pair[1])
			if err != nil {
				t.Fatalf("%v PairContext%v: %v", m, pair, err)
			}
			if math.Float64bits(a.Value) != math.Float64bits(b.Value) {
				t.Errorf("%v %v: Pair = %x, PairContext(Background) = %x",
					m, pair, math.Float64bits(a.Value), math.Float64bits(b.Value))
			}
			if a.Walks != b.Walks || a.WalkSteps != b.WalkSteps || a.PushOps != b.PushOps {
				t.Errorf("%v %v: work counters diverge: %+v vs %+v", m, pair, a, b)
			}
		}
	}

	ve, err := landmarkrd.Exact(g, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	vc, err := landmarkrd.ExactContext(context.Background(), g, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(ve) != math.Float64bits(vc) {
		t.Errorf("Exact = %x, ExactContext(Background) = %x", math.Float64bits(ve), math.Float64bits(vc))
	}
}

// TestCanceledMetric asserts an aborted query is counted in the shared sink.
func TestCanceledMetric(t *testing.T) {
	g := loadCancelGraph(t)
	est, err := landmarkrd.NewEstimator(g, landmarkrd.AbWalk, landmarkrd.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancelFn := context.WithCancel(context.Background())
	cancelFn()
	if _, err := est.PairContext(ctx, 0, 100); !errors.Is(err, landmarkrd.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if stats := est.Stats(); stats.Canceled == 0 {
		t.Errorf("stats.Canceled = 0 after an aborted query: %+v", stats)
	}
}
