module landmarkrd

go 1.22
