package landmarkrd_test

import (
	"fmt"

	landmarkrd "landmarkrd"
)

// ExampleExact computes closed-form resistances on a path: r equals hop
// distance when every edge has unit conductance.
func ExampleExact() {
	b := landmarkrd.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	r, err := landmarkrd.Exact(g, 0, 3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("r(0,3) = %.4f\n", r)
	// Output: r(0,3) = 3.0000
}

// ExampleNewEstimator shows the landmark estimator workflow; Push with a
// tight threshold is deterministic, so its output is stable.
func ExampleNewEstimator() {
	// A 6-cycle: r(0,3) = 3·3/6 = 1.5.
	b := landmarkrd.NewBuilder(6)
	for i := 0; i < 6; i++ {
		b.AddEdge(i, (i+1)%6)
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	est, err := landmarkrd.NewEstimatorAt(g, landmarkrd.Push, 5, landmarkrd.Options{Theta: 1e-10})
	if err != nil {
		panic(err)
	}
	res, err := est.Pair(0, 3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("r(0,3) = %.4f (landmark %d)\n", res.Value, est.Landmark())
	// Output: r(0,3) = 1.5000 (landmark 5)
}

// ExampleComputeElectricFlow demonstrates Thomson's principle: the energy
// of the unit electric flow equals the effective resistance.
func ExampleComputeElectricFlow() {
	b := landmarkrd.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 3)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3) // two parallel 2-hop paths: r(0,3) = 1
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	f, err := landmarkrd.ComputeElectricFlow(g, 0, 3)
	if err != nil {
		panic(err)
	}
	top, _ := f.Flow(0, 1)
	fmt.Printf("energy = %.4f, flow on top path = %.4f\n", f.Energy(), top)
	// Output: energy = 1.0000, flow on top path = 0.5000
}

// ExampleNewDynamic shows the parallel-resistor law under a dynamic edge
// insertion.
func ExampleNewDynamic() {
	b := landmarkrd.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	dyn, err := landmarkrd.NewDynamic(g)
	if err != nil {
		panic(err)
	}
	before, _ := dyn.Resistance(0, 2)
	if err := dyn.AddEdge(0, 2, 1); err != nil {
		panic(err)
	}
	after, _ := dyn.Resistance(0, 2)
	fmt.Printf("before = %.4f, after shortcut = %.4f\n", before, after)
	// Output: before = 2.0000, after shortcut = 0.6667
}
