//go:build race

package landmarkrd_test

// raceEnabled reports whether the test binary was built with -race, which
// changes sync.Pool behaviour (a fraction of puts are dropped on purpose).
const raceEnabled = true
