package landmarkrd

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"landmarkrd/internal/core"
	"landmarkrd/internal/dynamic"
	"landmarkrd/internal/epoch"
)

// ErrDisconnecting reports an edge removal that would disconnect the graph,
// detected by the Sherman-Morrison denominator guard 1 + w·r(a,b) ≤ 0.
// Both the offline DynamicUpdater and the live-update path return errors
// matching it through errors.Is.
var ErrDisconnecting = dynamic.ErrDisconnecting

// UpdateOp is the kind of a streamed graph mutation.
type UpdateOp int

const (
	// UpdateAddEdge inserts Weight units of conductance between S and T
	// (parallel to any existing edge; conductances add).
	UpdateAddEdge UpdateOp = iota
	// UpdateRemoveEdge removes Weight units of conductance from the pair
	// {S, T}. Removing a bridge is rejected with ErrDisconnecting.
	UpdateRemoveEdge
)

func (op UpdateOp) String() string {
	switch op {
	case UpdateAddEdge:
		return "add"
	case UpdateRemoveEdge:
		return "remove"
	default:
		return fmt.Sprintf("UpdateOp(%d)", int(op))
	}
}

// GraphUpdate is one streamed edge mutation. Weight must be positive and
// finite for both ops; the direction of the conductance change comes from
// Op.
type GraphUpdate struct {
	Op     UpdateOp
	S, T   int
	Weight float64
}

// LiveOptions configures NewLiveIndex. The zero value serves MethodAbsorbedWalk
// queries from a single auto-selected landmark index with default rebase
// thresholds.
type LiveOptions struct {
	// Method is the estimation method batch queries use (see Method).
	Method Method
	// Batch configures the per-epoch batch engine. Portfolio and
	// PinLandmark must be left unset — the live index manages the serving
	// index itself (via PortfolioK / InitialIndex / InitialPortfolio) and
	// rejects options that would fight it.
	Batch BatchOptions
	// PortfolioK, when > 0, serves each epoch from a K-landmark portfolio
	// instead of a single-landmark index.
	PortfolioK int
	// Landmarks pins the portfolio landmark set explicitly (requires
	// PortfolioK > 0; overrides K/Strategy selection). Re-bases rebuild on
	// the same vertices, so a replica serving a shard subset keeps its shard
	// across epoch publications.
	Landmarks []int
	// NoIndex skips the per-epoch diagonal index build; fresh (patch-aware)
	// queries fall back to full Sherman-Morrison pseudo-inverse solves.
	// Single-source queries are unavailable in this mode.
	NoIndex bool
	// Mode selects the diagonal build for per-epoch indexes (default
	// DiagExactCG).
	Mode DiagMode
	// Precond selects the CG preconditioner for index builds and patch
	// solves (default PrecondJacobi).
	Precond PrecondMode
	// IndexWorkers shards per-epoch index builds (default GOMAXPROCS).
	IndexWorkers int
	// MaxPatches triggers a background re-base once the patch stack
	// reaches this depth (default 64; negative disables the count
	// trigger).
	MaxPatches int
	// MaxPatchOverhead triggers a background re-base once the estimated
	// per-query patch overhead — patches·n/(4m+n), the patch-correction
	// work measured in grounded-operator sweeps — crosses this threshold
	// (default 32 sweeps; negative disables the overhead trigger).
	MaxPatchOverhead float64
	// Tol is the CG tolerance of per-update patch solves (default 1e-10).
	Tol float64
	// Metrics, when non-nil, receives all live-serving observability
	// (LiveUpdates, PatchedQueries, Rebases, EpochPublishes, EpochRetires,
	// RebaseTime) alongside the usual query counters. When nil the index
	// allocates its own, readable via Stats.
	Metrics *Metrics
	// OnRetire, when non-nil, runs exactly once per superseded epoch after
	// its last pinned query releases it — on the releasing goroutine, so
	// keep it fast.
	OnRetire func(seq uint64)
	// OnRebase, when non-nil, runs after every auto-triggered background
	// re-base with the then-current epoch and the re-base error, if any.
	OnRebase func(seq uint64, err error)
	// InitialIndex seeds the first epoch with a prebuilt (e.g. snapshot-
	// loaded) index instead of building one. Must be built on the same
	// graph; requires PortfolioK == 0.
	InitialIndex *LandmarkIndex
	// InitialPortfolio seeds the first epoch with a prebuilt portfolio.
	// Must be built on the same graph; requires PortfolioK > 0.
	InitialPortfolio *PortfolioIndex
}

// liveState is the consistent serving state one epoch governs: the
// materialized graph, the batch engine and index/portfolio built on it, and
// the Sherman-Morrison patch stack of mutations streamed since.
type liveState struct {
	g       *Graph
	engine  *BatchEngine
	idx     *LandmarkIndex
	pf      *PortfolioIndex
	patched *dynamic.PatchedIndex // fresh-read path when an index exists
	upd     *dynamic.Updater      // fresh-read path in NoIndex mode
}

func (st *liveState) applyPatch(ctx context.Context, a, b int, w float64) error {
	if st.patched != nil {
		return st.patched.ApplyUpdateContext(ctx, a, b, w)
	}
	if w >= 0 {
		return st.upd.AddEdge(a, b, w)
	}
	return st.upd.RemoveConductance(a, b, -w)
}

func (st *liveState) patches() []dynamic.Patch {
	if st.patched != nil {
		return st.patched.Patches()
	}
	return st.upd.Patches()
}

func (st *liveState) patchCount() int {
	if st.patched != nil {
		return st.patched.Len()
	}
	return st.upd.Updates()
}

// LiveIndex serves resistance queries over a graph that mutates while
// queries run. Queries pin a consistent epoch (Pin) — a materialized graph
// plus the index built on it — and never block; streamed mutations
// (ApplyUpdate) append Sherman-Morrison patch vectors to the current
// epoch's stack; a background re-base folds the stack into a fresh build
// once it crosses the MaxPatches / MaxPatchOverhead thresholds, publishing
// a new epoch and retiring the old one only after its last pinned query
// releases it.
//
// Consistency model: a pinned epoch's batch and single-source answers are
// computed against that epoch's materialized graph — bit-identical to a
// cold build of the same graph, regardless of concurrent mutations. Fresh
// reads (FreshPairContext) additionally fold the patch stack in through
// the rank-one identity and see a consistent prefix of the update stream,
// never a torn stack.
type LiveIndex struct {
	opts    LiveOptions
	seed    uint64
	metrics *Metrics
	mgr     *epoch.Manager[*liveState]

	mu       sync.Mutex // serializes mutations and publication
	rebaseMu sync.Mutex // serializes re-bases; lock order: rebaseMu → mu
	rebasing atomic.Bool
	rebaseWG sync.WaitGroup
}

// NewLiveIndex builds the first epoch over g and starts serving.
func NewLiveIndex(g *Graph, opts LiveOptions) (*LiveIndex, error) {
	if err := requireGraph(g); err != nil {
		return nil, err
	}
	if opts.Batch.Portfolio != nil || opts.Batch.PinLandmark || opts.Batch.Landmark != 0 {
		return nil, fmt.Errorf("landmarkrd: LiveOptions.Batch must not set Portfolio or PinLandmark/Landmark; use PortfolioK or InitialIndex")
	}
	if opts.InitialIndex != nil && opts.PortfolioK > 0 {
		return nil, fmt.Errorf("landmarkrd: LiveOptions.InitialIndex requires PortfolioK == 0")
	}
	if opts.InitialPortfolio != nil && opts.PortfolioK == 0 {
		return nil, fmt.Errorf("landmarkrd: LiveOptions.InitialPortfolio requires PortfolioK > 0")
	}
	if len(opts.Landmarks) > 0 && opts.PortfolioK == 0 {
		return nil, fmt.Errorf("landmarkrd: LiveOptions.Landmarks requires PortfolioK > 0")
	}
	if opts.InitialIndex != nil && opts.InitialIndex.G != g {
		return nil, fmt.Errorf("landmarkrd: LiveOptions.InitialIndex was built on a different graph")
	}
	if opts.InitialPortfolio != nil && opts.InitialPortfolio.G != g {
		return nil, fmt.Errorf("landmarkrd: LiveOptions.InitialPortfolio was built on a different graph")
	}
	if opts.MaxPatches == 0 {
		opts.MaxPatches = 64
	}
	if opts.MaxPatchOverhead == 0 {
		opts.MaxPatchOverhead = 32
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-10
	}
	seed := opts.Batch.Options.Seed
	if seed == 0 {
		seed = 1
	}
	metrics := opts.Metrics
	if metrics == nil {
		metrics = &Metrics{}
	}
	li := &LiveIndex{opts: opts, seed: seed, metrics: metrics}
	st, err := li.buildState(g, opts.InitialIndex, opts.InitialPortfolio)
	if err != nil {
		return nil, err
	}
	li.mgr = epoch.NewManager(st, func(seq uint64, _ *liveState) {
		metrics.EpochRetires.Inc()
		if opts.OnRetire != nil {
			opts.OnRetire(seq)
		}
	})
	return li, nil
}

// buildState constructs the serving state for graph g, reusing prebuilt
// artifacts when provided (and built on g).
func (li *LiveIndex) buildState(g *Graph, initIdx *LandmarkIndex, initPf *PortfolioIndex) (*liveState, error) {
	st := &liveState{g: g}
	bo := li.opts.Batch
	bo.Metrics = li.metrics
	if li.opts.PortfolioK > 0 {
		pf := initPf
		if pf == nil || pf.G != g {
			var err error
			pf, err = BuildPortfolioIndex(g, PortfolioBuildOptions{
				K:         li.opts.PortfolioK,
				Strategy:  li.opts.Batch.Options.Strategy,
				Landmarks: li.opts.Landmarks,
				Mode:      li.opts.Mode,
				Seed:      li.seed,
				Workers:   li.opts.IndexWorkers,
				Precond:   li.opts.Precond,
				Metrics:   li.metrics,
			})
			if err != nil {
				return nil, fmt.Errorf("landmarkrd: live portfolio build: %w", err)
			}
		}
		st.pf = pf
		bo.Portfolio = pf
	} else if initIdx != nil && initIdx.G == g {
		st.idx = initIdx
		bo.Landmark = initIdx.Landmark
		bo.PinLandmark = true
	}
	engine, err := NewBatchEngine(g, li.opts.Method, bo)
	if err != nil {
		return nil, fmt.Errorf("landmarkrd: live engine build: %w", err)
	}
	st.engine = engine
	switch {
	case li.opts.NoIndex:
		upd, err := dynamic.New(g, li.opts.Tol)
		if err != nil {
			return nil, fmt.Errorf("landmarkrd: live updater: %w", err)
		}
		st.upd = upd
	case st.pf != nil:
		st.patched = dynamic.NewPatchedIndex(st.pf.Index(0), li.opts.Tol, li.metrics)
	default:
		if st.idx == nil {
			idx, err := BuildLandmarkIndexOpts(g, engine.Landmark(), IndexBuildOptions{
				Mode:    li.opts.Mode,
				Seed:    li.seed,
				Workers: li.opts.IndexWorkers,
				Precond: li.opts.Precond,
				Metrics: li.metrics,
			})
			if err != nil {
				return nil, fmt.Errorf("landmarkrd: live index build: %w", err)
			}
			st.idx = idx
		}
		st.patched = dynamic.NewPatchedIndex(st.idx, li.opts.Tol, li.metrics)
	}
	return st, nil
}

// Epoch returns the current epoch sequence number (the first epoch is 1;
// every publication — re-base or hot reload — increments it).
func (li *LiveIndex) Epoch() uint64 { return li.mgr.Seq() }

// PendingPatches returns the current epoch's patch-stack depth.
func (li *LiveIndex) PendingPatches() int { return li.mgr.Current().Value().patchCount() }

// Fingerprint returns the current epoch's graph fingerprint — the cache/
// routing key for answers computed against that epoch's materialized graph.
// Every publication that changes the graph (re-base, snapshot reload)
// changes it, so values cached under an old fingerprint can never be served
// for the new graph.
func (li *LiveIndex) Fingerprint() uint64 { return li.mgr.Current().Value().g.Fingerprint() }

// Metrics returns the live metrics sink.
func (li *LiveIndex) Metrics() *Metrics { return li.metrics }

// Stats snapshots the live metrics.
func (li *LiveIndex) Stats() Stats { return li.metrics.Snapshot() }

// LiveUpdateResult reports the outcome of one applied mutation.
type LiveUpdateResult struct {
	// Epoch is the epoch the mutation was applied to.
	Epoch uint64
	// Patches is the patch-stack depth after the mutation.
	Patches int
	// RebaseTriggered reports that this mutation pushed the stack over a
	// re-base threshold and a background re-base was started.
	RebaseTriggered bool
}

// ApplyUpdate applies one streamed mutation to the current epoch. Queries
// never block on it; concurrent ApplyUpdate calls serialize. A removal
// that would disconnect the graph returns an error matching
// ErrDisconnecting and changes nothing. When the patch stack crosses a
// re-base threshold a background re-base is kicked off (at most one at a
// time) and RebaseTriggered is set.
func (li *LiveIndex) ApplyUpdate(ctx context.Context, u GraphUpdate) (LiveUpdateResult, error) {
	w := u.Weight
	switch u.Op {
	case UpdateAddEdge:
	case UpdateRemoveEdge:
		w = -w
	default:
		return LiveUpdateResult{}, fmt.Errorf("landmarkrd: unknown update op %d", int(u.Op))
	}
	if !(u.Weight > 0) || math.IsInf(u.Weight, 0) {
		return LiveUpdateResult{}, fmt.Errorf("landmarkrd: update weight must be positive and finite, got %v", u.Weight)
	}
	li.mu.Lock()
	st := li.mgr.Current().Value()
	err := st.applyPatch(ctx, u.S, u.T, w)
	count := st.patchCount()
	seq := li.mgr.Seq()
	li.mu.Unlock()
	if err != nil {
		return LiveUpdateResult{}, err
	}
	if st.upd != nil {
		// The patched path counts its own updates; the NoIndex updater
		// doesn't carry a metrics sink.
		li.metrics.LiveUpdates.Inc()
	}
	res := LiveUpdateResult{Epoch: seq, Patches: count}
	if li.shouldRebase(st, count) && li.rebasing.CompareAndSwap(false, true) {
		res.RebaseTriggered = true
		li.rebaseWG.Add(1)
		go func() {
			defer li.rebaseWG.Done()
			defer li.rebasing.Store(false)
			_, err := li.Rebase(context.Background())
			if li.opts.OnRebase != nil {
				li.opts.OnRebase(li.mgr.Seq(), err)
			}
		}()
	}
	return res, nil
}

// shouldRebase applies the re-base cost law: trigger on raw stack depth or
// on estimated per-fresh-query patch overhead p·n/(4m+n), the correction
// work measured in grounded-operator sweeps (one sweep ≈ 4m+n flops).
func (li *LiveIndex) shouldRebase(st *liveState, patches int) bool {
	if li.opts.MaxPatches > 0 && patches >= li.opts.MaxPatches {
		return true
	}
	if li.opts.MaxPatchOverhead > 0 {
		n := float64(st.g.N())
		sweep := 4*float64(st.g.M()) + n
		if float64(patches)*n/sweep >= li.opts.MaxPatchOverhead {
			return true
		}
	}
	return false
}

// Rebase folds the current patch stack into a fresh materialized graph,
// rebuilds the index/portfolio and engine on it (the same parallel builds
// a cold start runs), and publishes the result as a new epoch. Mutations
// that race the rebuild are replayed onto the new epoch before
// publication, so no update is lost. The superseded epoch retires once
// its last pinned query releases it. Returns the new epoch sequence
// number; with an empty patch stack it returns the current one unchanged.
func (li *LiveIndex) Rebase(ctx context.Context) (uint64, error) {
	li.rebaseMu.Lock()
	defer li.rebaseMu.Unlock()
	start := time.Now()

	li.mu.Lock()
	st := li.mgr.Current().Value()
	base := st.patches()
	li.mu.Unlock()
	if len(base) == 0 {
		return li.mgr.Seq(), nil
	}

	g2, err := dynamic.MaterializeGraph(st.g, base)
	if err != nil {
		return li.mgr.Seq(), fmt.Errorf("landmarkrd: rebase materialize: %w", err)
	}
	next, err := li.buildState(g2, nil, nil)
	if err != nil {
		return li.mgr.Seq(), err
	}

	li.mu.Lock()
	defer li.mu.Unlock()
	if li.mgr.Current().Value() != st {
		// A hot reload (PublishIndex/PublishPortfolio) swapped the state
		// under the rebuild; its snapshot is authoritative.
		return li.mgr.Seq(), fmt.Errorf("landmarkrd: rebase aborted: epoch replaced during rebuild")
	}
	// Replay mutations that arrived while the rebuild ran. They were
	// accepted against base+suffix, so replaying the suffix on the
	// materialized base cannot disconnect; an error here is a solver
	// failure and aborts the re-base with the old epoch intact.
	for _, p := range st.patches()[len(base):] {
		if err := next.applyPatch(ctx, p.A, p.B, p.W); err != nil {
			return li.mgr.Seq(), fmt.Errorf("landmarkrd: rebase replay: %w", err)
		}
	}
	seq := li.publishLocked(next)
	li.metrics.ObserveRebase(time.Since(start))
	return seq, nil
}

// publishLocked publishes st as the new current epoch. Caller holds li.mu.
func (li *LiveIndex) publishLocked(st *liveState) uint64 {
	seq := li.mgr.Publish(st)
	li.metrics.EpochPublishes.Inc()
	return seq
}

// PublishIndex hot-swaps serving onto a prebuilt (e.g. snapshot-loaded)
// index, publishing it as a new epoch: idx.G becomes the serving graph and
// any pending patches on the superseded epoch are dropped — the snapshot
// is authoritative. This is the SIGHUP reload path; it shares the epoch
// lifecycle with streamed updates. Requires PortfolioK == 0.
func (li *LiveIndex) PublishIndex(idx *LandmarkIndex) (uint64, error) {
	if idx == nil || idx.G == nil {
		return 0, fmt.Errorf("landmarkrd: PublishIndex: nil index")
	}
	if li.opts.PortfolioK > 0 {
		return 0, fmt.Errorf("landmarkrd: PublishIndex on a portfolio-mode live index")
	}
	st, err := li.buildState(idx.G, idx, nil)
	if err != nil {
		return 0, err
	}
	li.mu.Lock()
	defer li.mu.Unlock()
	return li.publishLocked(st), nil
}

// PublishPortfolio is PublishIndex for portfolio-mode serving. Requires
// PortfolioK > 0.
func (li *LiveIndex) PublishPortfolio(pf *PortfolioIndex) (uint64, error) {
	if pf == nil || pf.G == nil {
		return 0, fmt.Errorf("landmarkrd: PublishPortfolio: nil portfolio")
	}
	if li.opts.PortfolioK == 0 {
		return 0, fmt.Errorf("landmarkrd: PublishPortfolio on an index-mode live index")
	}
	st, err := li.buildState(pf.G, nil, pf)
	if err != nil {
		return 0, err
	}
	li.mu.Lock()
	defer li.mu.Unlock()
	return li.publishLocked(st), nil
}

// Quiesce blocks until any in-flight background re-base finishes. Shutdown
// and tests use it; serving never needs to.
func (li *LiveIndex) Quiesce() { li.rebaseWG.Wait() }

// Pin returns the current epoch pinned for querying. The caller must
// Release it exactly once (extra Release calls are no-ops); the epoch's
// state cannot be retired or recycled while pinned.
func (li *LiveIndex) Pin() *LiveEpoch {
	return &LiveEpoch{e: li.mgr.Acquire(), metrics: li.metrics}
}

// LiveEpoch is a pinned, consistent serving snapshot: a materialized graph
// with the engine and index built on it, plus the patch stack streamed
// onto it. All query methods are safe for concurrent use.
type LiveEpoch struct {
	e        *epoch.Epoch[*liveState]
	metrics  *Metrics
	released atomic.Bool
}

// Release unpins the epoch. Idempotent.
func (ep *LiveEpoch) Release() {
	if ep.released.CompareAndSwap(false, true) {
		ep.e.Release()
	}
}

// Seq returns the epoch sequence number.
func (ep *LiveEpoch) Seq() uint64 { return ep.e.Seq() }

// Graph returns the epoch's materialized graph (without pending patches).
func (ep *LiveEpoch) Graph() *Graph { return ep.e.Value().g }

// Fingerprint returns the fingerprint of the epoch's materialized graph.
// Batch and single-source answers are computed against exactly that graph
// (patches only affect FreshPairContext), so it is the correct cache key
// for this epoch's pair answers.
func (ep *LiveEpoch) Fingerprint() uint64 { return ep.e.Value().g.Fingerprint() }

// Engine returns the epoch's batch engine.
func (ep *LiveEpoch) Engine() *BatchEngine { return ep.e.Value().engine }

// Landmark returns the epoch's (primary) landmark vertex.
func (ep *LiveEpoch) Landmark() int { return ep.e.Value().engine.Landmark() }

// Index returns the epoch's landmark index, or nil in NoIndex or
// portfolio mode.
func (ep *LiveEpoch) Index() *LandmarkIndex { return ep.e.Value().idx }

// Portfolio returns the epoch's portfolio, or nil outside portfolio mode.
func (ep *LiveEpoch) Portfolio() *PortfolioIndex { return ep.e.Value().pf }

// Patches returns the number of mutations applied to this epoch so far.
func (ep *LiveEpoch) Patches() int { return ep.e.Value().patchCount() }

// PairsContext answers a batch against the epoch's materialized graph —
// bit-identical to the same batch on a cold build of that graph.
func (ep *LiveEpoch) PairsContext(ctx context.Context, queries []PairQuery) ([]PairResult, error) {
	return ep.e.Value().engine.PairsContext(ctx, queries)
}

// DegradedPairsContext answers a batch through the degraded Monte Carlo
// tier against the epoch's materialized graph.
func (ep *LiveEpoch) DegradedPairsContext(ctx context.Context, queries []PairQuery) ([]PairResult, error) {
	return ep.e.Value().engine.DegradedPairsContext(ctx, queries)
}

// SingleSourceContext returns r(s, t) for every t against the epoch's
// materialized graph, through the portfolio or index. Unavailable in
// NoIndex mode.
func (ep *LiveEpoch) SingleSourceContext(ctx context.Context, s int) ([]float64, error) {
	st := ep.e.Value()
	switch {
	case st.pf != nil:
		out, _, err := st.pf.SingleSourceContext(ctx, s, core.SingleSourceOptions{})
		return out, err
	case st.idx != nil:
		return st.idx.SingleSourceContext(ctx, s, core.SingleSourceOptions{})
	default:
		return nil, fmt.Errorf("landmarkrd: single-source queries need an index (NoIndex live mode)")
	}
}

// FreshPairContext returns r(s, t) with the epoch's pending patches folded
// in — the freshest consistent answer available without waiting for a
// re-base. One grounded solve plus O(1) per patch when an index exists;
// full pseudo-inverse solves in NoIndex mode.
func (ep *LiveEpoch) FreshPairContext(ctx context.Context, s, t int) (float64, error) {
	st := ep.e.Value()
	if st.patched != nil {
		return st.patched.PairContext(ctx, s, t)
	}
	r, err := st.upd.Resistance(s, t)
	if err == nil {
		ep.metrics.PatchedQueries.Inc()
	}
	return r, err
}
