package landmarkrd

// Portfolio tests: conformance of the routed single-source path against
// the dense oracle at exact tolerance for K ∈ {1, 2, 4}, byte-identical
// determinism across worker counts, the v3 snapshot round trip (plus v2
// backward compatibility), and the router's conflict-fallback behavior on
// both the estimator and the batch engine.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"landmarkrd/internal/core"
)

// TestConformancePortfolio runs the golden corpus through the portfolio
// single-source path at K ∈ {1, 2, 4} with DiagExactCG columns: the routed
// answer must match the dense oracle to the exact-path tolerance, and the
// serving landmark must be the router's cheapest column for the source.
func TestConformancePortfolio(t *testing.T) {
	for _, c := range conformanceCases(t) {
		for _, k := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/K%d", c.Name, k), func(t *testing.T) {
				p, err := BuildPortfolioIndex(c.G, PortfolioBuildOptions{
					K: k, Mode: DiagExactCG, Seed: 7,
				})
				if err != nil {
					t.Fatalf("BuildPortfolioIndex: %v", err)
				}
				if p.K() != k {
					t.Fatalf("portfolio size %d, want %d", p.K(), k)
				}
				seen := map[int]bool{}
				for _, v := range p.Landmarks {
					if seen[v] {
						t.Fatalf("duplicate landmark %d in %v", v, p.Landmarks)
					}
					seen[v] = true
				}
				for _, pr := range c.Pairs[:2] {
					s := pr[0]
					got, served, err := p.SingleSource(s, core.SingleSourceOptions{Tol: 1e-12})
					if err != nil {
						t.Fatalf("SingleSource(%d): %v", s, err)
					}
					if !seen[served] {
						t.Fatalf("served landmark %d not in portfolio %v", served, p.Landmarks)
					}
					if want := p.Landmarks[p.RouteSource(s)[0]]; served != want {
						t.Fatalf("served landmark %d, router's cheapest is %d", served, want)
					}
					want, err := c.O.SingleSource(s)
					if err != nil {
						t.Fatal(err)
					}
					worst, at := 0.0, -1
					for v := range got {
						d := math.Abs(got[v]-want[v]) / math.Max(1, math.Abs(want[v]))
						if d > worst {
							worst, at = d, v
						}
					}
					if worst > exactTol {
						t.Errorf("K=%d SingleSource(%d): worst entry %d off by %.3g (tol %.3g)",
							k, s, at, worst, exactTol)
					}
				}
			})
		}
	}
}

// TestPortfolioRouteOrder pins the router contract: Route returns every
// landmark exactly once, sorted by ascending cost r(s,ℓ)+r(t,ℓ).
func TestPortfolioRouteOrder(t *testing.T) {
	c := conformanceCases(t)[0]
	p, err := BuildPortfolioIndex(c.G, PortfolioBuildOptions{K: 4, Mode: DiagExactCG, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s, u := c.Pairs[0][0], c.Pairs[0][1]
	order := p.Route(s, u)
	if len(order) != p.K() {
		t.Fatalf("Route returned %d positions, want %d", len(order), p.K())
	}
	seen := map[int]bool{}
	for i, j := range order {
		if j < 0 || j >= p.K() || seen[j] {
			t.Fatalf("Route order %v is not a permutation of portfolio positions", order)
		}
		seen[j] = true
		if i > 0 && p.RouteCost(order[i-1], s, u) > p.RouteCost(j, s, u) {
			t.Fatalf("Route order %v not sorted by cost at position %d", order, i)
		}
	}
}

// TestPortfolioDeterminismWorkers requires the portfolio build to be
// byte-identical at any worker count, for every diagonal mode, including
// the randomized ones.
func TestPortfolioDeterminismWorkers(t *testing.T) {
	c := conformanceCases(t)[0]
	for _, mode := range []DiagMode{DiagExactCG, DiagMC, DiagSketch} {
		t.Run(mode.String(), func(t *testing.T) {
			var ref *PortfolioIndex
			for _, workers := range []int{1, 3, 8} {
				p, err := BuildPortfolioIndex(c.G, PortfolioBuildOptions{
					K: 3, Mode: mode, Seed: 99, Workers: workers,
				})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if ref == nil {
					ref = p
					continue
				}
				if fmt.Sprint(p.Landmarks) != fmt.Sprint(ref.Landmarks) {
					t.Fatalf("workers=%d: landmarks %v, want %v", workers, p.Landmarks, ref.Landmarks)
				}
				for j := range p.Cols {
					for i := range p.Cols[j] {
						if math.Float64bits(p.Cols[j][i]) != math.Float64bits(ref.Cols[j][i]) {
							t.Fatalf("workers=%d: col %d entry %d differs: %x vs %x",
								workers, j, i, math.Float64bits(p.Cols[j][i]), math.Float64bits(ref.Cols[j][i]))
						}
					}
				}
			}
		})
	}
}

// TestPortfolioSnapshotRoundTrip writes a v3 snapshot and reads it back:
// landmarks, mode, and every column must survive Float64bits-identically,
// and the typed sentinels must fire for version, corruption, and
// graph-binding failures.
func TestPortfolioSnapshotRoundTrip(t *testing.T) {
	cases := conformanceCases(t)
	c := cases[0]
	p, err := BuildPortfolioIndex(c.G, PortfolioBuildOptions{K: 3, Mode: DiagMC, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), buf.Bytes()...)

	got, err := ReadPortfolioFrom(bytes.NewReader(raw), c.G)
	if err != nil {
		t.Fatalf("ReadPortfolioFrom: %v", err)
	}
	if got.Mode != p.Mode || fmt.Sprint(got.Landmarks) != fmt.Sprint(p.Landmarks) {
		t.Fatalf("header changed: %v %v, want %v %v", got.Mode, got.Landmarks, p.Mode, p.Landmarks)
	}
	for j := range p.Cols {
		for i := range p.Cols[j] {
			if math.Float64bits(got.Cols[j][i]) != math.Float64bits(p.Cols[j][i]) {
				t.Fatalf("col %d entry %d changed across round trip", j, i)
			}
		}
	}

	t.Run("V2ReaderRejectsV3", func(t *testing.T) {
		if _, err := ReadIndexFrom(bytes.NewReader(raw), c.G); !errors.Is(err, ErrSnapshotVersion) {
			t.Fatalf("ReadIndexFrom on v3 bytes: %v, want ErrSnapshotVersion", err)
		}
	})
	t.Run("ChecksumTrips", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[len(bad)/2] ^= 0x40
		if _, err := ReadPortfolioFrom(bytes.NewReader(bad), c.G); !errors.Is(err, ErrSnapshotChecksum) && !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("corrupted snapshot: %v, want checksum/corrupt sentinel", err)
		}
	})
	t.Run("GraphBinding", func(t *testing.T) {
		other := cases[1].G
		if other.N() == c.G.N() && other.M() == c.G.M() {
			t.Skip("need a structurally different graph")
		}
		if _, err := ReadPortfolioFrom(bytes.NewReader(raw), other); !errors.Is(err, ErrSnapshotMismatch) && !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("wrong graph: %v, want mismatch sentinel", err)
		}
	})
	t.Run("Truncated", func(t *testing.T) {
		if _, err := ReadPortfolioFrom(bytes.NewReader(raw[:len(raw)/3]), c.G); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("truncated snapshot: %v, want ErrSnapshotCorrupt", err)
		}
	})
}

// TestPortfolioSnapshotV2Compat reads a v2 single-landmark snapshot
// through the portfolio loader: it must come back as a K=1 portfolio with
// the identical column, so pre-portfolio snapshot files keep working.
func TestPortfolioSnapshotV2Compat(t *testing.T) {
	c := conformanceCases(t)[0]
	idx, err := BuildLandmarkIndexOpts(c.G, c.Landmark, IndexBuildOptions{Mode: DiagExactCG, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	p, err := ReadPortfolioFrom(&buf, c.G)
	if err != nil {
		t.Fatalf("ReadPortfolioFrom on v2 bytes: %v", err)
	}
	if p.K() != 1 || p.Landmarks[0] != idx.Landmark || p.Mode != idx.Mode {
		t.Fatalf("v2 upgrade: K=%d landmarks=%v mode=%v, want K=1 [%d] %v",
			p.K(), p.Landmarks, p.Mode, idx.Landmark, idx.Mode)
	}
	for i := range idx.Diag {
		if math.Float64bits(p.Cols[0][i]) != math.Float64bits(idx.Diag[i]) {
			t.Fatalf("v2 upgrade changed column entry %d", i)
		}
	}
}

// pathGraph builds an unweighted path 0—1—…—(n−1).
func pathGraph(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestPortfolioEstimatorFallback pins the router's conflict behavior on a
// path with landmarks at both ends: a query touching the cheapest landmark
// must fall back to the other one (counted in the stats), and a K=1
// portfolio whose only landmark conflicts must fail with the typed
// sentinel.
func TestPortfolioEstimatorFallback(t *testing.T) {
	g := pathGraph(t, 10)
	p, err := BuildPortfolioIndex(g, PortfolioBuildOptions{
		Landmarks: []int{0, 9}, Mode: DiagExactCG, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	est, err := NewPortfolioEstimator(p, Push, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// (0, 3): landmark 0 is the cheapest column (cost r(0,0)+r(3,0) = 3 vs
	// 9+6 = 15 for landmark 9) but collides with the endpoint, so the
	// query must be served by landmark 9.
	res, err := est.Pair(0, 3)
	if err != nil {
		t.Fatalf("Pair(0,3): %v", err)
	}
	if want := 3.0; math.Abs(res.Value-want) > 1e-3 {
		t.Fatalf("Pair(0,3) = %v, want %v", res.Value, want)
	}
	st := p.Stats()
	if st.Fallbacks < 1 {
		t.Fatalf("fallbacks = %d, want >= 1", st.Fallbacks)
	}
	if st.Routed[1] != 1 {
		t.Fatalf("routed = %v, want landmark 9 (position 1) to have served the query", st.Routed)
	}
	ms := est.Stats()
	if ms.RouterFallbacks < 1 || ms.PortfolioQueries != 1 {
		t.Fatalf("metrics: fallbacks=%d portfolio-queries=%d, want >=1 and 1",
			ms.RouterFallbacks, ms.PortfolioQueries)
	}

	t.Run("AllConflict", func(t *testing.T) {
		p1, err := BuildPortfolioIndex(g, PortfolioBuildOptions{
			Landmarks: []int{4}, Mode: DiagExactCG, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		e1, err := NewPortfolioEstimator(p1, Push, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e1.Pair(4, 7); !errors.Is(err, ErrLandmarkConflict) {
			t.Fatalf("all-conflict Pair: %v, want ErrLandmarkConflict", err)
		}
	})
}

// TestBatchEnginePortfolio covers the batch path: portfolio-routed batches
// must be byte-identical across worker counts, answer landmark-touching
// queries through the fallback chain (exact only when every member
// conflicts), and reject invalid option combinations.
func TestBatchEnginePortfolio(t *testing.T) {
	g := pathGraph(t, 12)
	p, err := BuildPortfolioIndex(g, PortfolioBuildOptions{
		Landmarks: []int{0, 11}, Mode: DiagExactCG, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	queries := []PairQuery{
		{S: 2, T: 7},
		{S: 0, T: 5},  // conflicts with landmark 0: must fall back to 11
		{S: 0, T: 11}, // conflicts with both: exact-fallback path
		{S: 9, T: 3},
	}
	var ref []PairResult
	for _, workers := range []int{1, 4} {
		eng, err := NewBatchEngine(g, AbWalk, BatchOptions{
			Portfolio: p, Workers: workers, Options: Options{Seed: 42, Walks: 128},
		})
		if err != nil {
			t.Fatal(err)
		}
		if eng.Landmark() != p.Primary() {
			t.Fatalf("engine landmark %d, want portfolio primary %d", eng.Landmark(), p.Primary())
		}
		res, err := eng.Pairs(queries)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("workers=%d query %d: %v", workers, i, r.Err)
			}
			want, err := Exact(g, r.S, r.T)
			if err != nil {
				t.Fatal(err)
			}
			// The path graph is where the landmark decomposition is exact
			// for walk estimates through an endpoint landmark; allow the
			// Monte Carlo noise its bound.
			if math.IsNaN(r.Estimate.Value) || r.Estimate.Value < 0 {
				t.Fatalf("query %d: bad estimate %v", i, r.Estimate.Value)
			}
			if math.Abs(r.Estimate.Value-want) > math.Max(2, want) {
				t.Fatalf("query %d: estimate %v wildly off exact %v", i, r.Estimate.Value, want)
			}
		}
		// The both-conflict query must be exact (fallback solver).
		if diff := math.Abs(res[2].Estimate.Value - 11); diff > 1e-6 {
			t.Fatalf("both-conflict query answered %v, want exact 11", res[2].Estimate.Value)
		}
		if ref == nil {
			ref = res
			continue
		}
		for i := range res {
			if math.Float64bits(res[i].Estimate.Value) != math.Float64bits(ref[i].Estimate.Value) {
				t.Fatalf("workers=%d: query %d value %v differs from workers=1 value %v",
					workers, i, res[i].Estimate.Value, ref[i].Estimate.Value)
			}
		}
	}

	t.Run("RejectPinWithPortfolio", func(t *testing.T) {
		_, err := NewBatchEngine(g, Push, BatchOptions{Portfolio: p, PinLandmark: true, Landmark: 3})
		if err == nil {
			t.Fatal("PinLandmark + Portfolio accepted, want error")
		}
	})
	t.Run("RejectForeignGraph", func(t *testing.T) {
		other := pathGraph(t, 12)
		_, err := NewBatchEngine(other, Push, BatchOptions{Portfolio: p})
		if err == nil {
			t.Fatal("portfolio from a different graph accepted, want error")
		}
	})
}

// TestSelectPortfolioLandmarksSpread checks the selection objective where
// it is unambiguous: on a path, the second landmark must land far from the
// first (score × hop-distance can never prefer a neighbor of the primary
// over the far end's neighborhood).
func TestSelectPortfolioLandmarksSpread(t *testing.T) {
	g := pathGraph(t, 64)
	lms, err := SelectPortfolioLandmarks(g, 2, MaxDegree, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(lms) != 2 {
		t.Fatalf("got %d landmarks, want 2", len(lms))
	}
	hops := lms[0] - lms[1]
	if hops < 0 {
		hops = -hops
	}
	if hops < 16 {
		t.Fatalf("landmarks %v are %d hops apart on a 64-path, want spread >= 16", lms, hops)
	}
}

// TestPortfolioAccessors pins the thin surface of the public portfolio
// types: file save/load wrappers, the context single-source path, the
// estimator's accessor and reseed plumbing, and the per-column index view.
func TestPortfolioAccessors(t *testing.T) {
	g := pathGraph(t, 16)
	p, err := BuildPortfolioIndex(g, PortfolioBuildOptions{K: 2, Mode: DiagExactCG, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("SaveLoadFile", func(t *testing.T) {
		path := t.TempDir() + "/pf.snap"
		if err := SavePortfolioIndex(p, path); err != nil {
			t.Fatal(err)
		}
		q, err := LoadPortfolioIndex(path, g)
		if err != nil {
			t.Fatal(err)
		}
		if q.K() != p.K() {
			t.Fatalf("loaded K=%d, want %d", q.K(), p.K())
		}
		for j := range p.Cols {
			for u := range p.Cols[j] {
				if math.Float64bits(q.Cols[j][u]) != math.Float64bits(p.Cols[j][u]) {
					t.Fatalf("column %d diverged at %d", j, u)
				}
			}
		}
	})

	t.Run("SingleSourceContext", func(t *testing.T) {
		want, served, err := PortfolioSingleSource(p, 2)
		if err != nil {
			t.Fatal(err)
		}
		got, servedCtx, err := PortfolioSingleSourceContext(context.Background(), p, 2)
		if err != nil {
			t.Fatal(err)
		}
		if servedCtx != served {
			t.Fatalf("context path routed %d, plain path %d", servedCtx, served)
		}
		for u := range want {
			if math.Float64bits(got[u]) != math.Float64bits(want[u]) {
				t.Fatalf("context path diverged at %d: %g vs %g", u, got[u], want[u])
			}
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, _, err := PortfolioSingleSourceContext(ctx, p, 2); !errors.Is(err, ErrCanceled) {
			t.Fatalf("canceled context: err=%v, want ErrCanceled", err)
		}
	})

	t.Run("ColumnViewAndFootprint", func(t *testing.T) {
		for j := range p.Landmarks {
			idx := p.Index(j)
			if idx.Landmark != p.Landmarks[j] {
				t.Fatalf("Index(%d).Landmark = %d, want %d", j, idx.Landmark, p.Landmarks[j])
			}
		}
		if want := int64(p.K()) * int64(g.N()) * 8; p.MemoryBytes() != want {
			t.Fatalf("MemoryBytes = %d, want %d", p.MemoryBytes(), want)
		}
	})

	t.Run("EstimatorSurface", func(t *testing.T) {
		pe, err := NewPortfolioEstimator(p, Push, Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if pe.Method() != Push {
			t.Errorf("Method() = %v, want Push", pe.Method())
		}
		if pe.Portfolio() != p {
			t.Error("Portfolio() does not return the built portfolio")
		}
		if lms := pe.Landmarks(); len(lms) != 2 || lms[0] != p.Landmarks[0] {
			t.Errorf("Landmarks() = %v, want %v", lms, p.Landmarks)
		}
		shared := &Metrics{}
		pe.SetMetrics(shared)
		if pe.Metrics() != shared {
			t.Error("SetMetrics did not rebind the sink")
		}
		pe.Reseed(11)
		res, err := pe.PairContext(context.Background(), 2, 13)
		if err != nil {
			t.Fatal(err)
		}
		if want := 11.0; math.Abs(res.Value-want) > 1e-2*want {
			t.Errorf("PairContext r(2,13) = %g, want ≈ %g", res.Value, want)
		}
		if pe.Stats().PortfolioQueries == 0 {
			t.Error("Stats() did not count the portfolio query")
		}
	})
}

func TestParseLandmarkList(t *testing.T) {
	got, err := ParseLandmarkList(" 3, 17,42 ")
	if err != nil || len(got) != 3 || got[0] != 3 || got[1] != 17 || got[2] != 42 {
		t.Fatalf("ParseLandmarkList = %v, %v", got, err)
	}
	if got, err := ParseLandmarkList(""); err != nil || got != nil {
		t.Errorf("empty list = %v, %v, want nil, nil", got, err)
	}
	for _, bad := range []string{"1,x", "1,,2", "-4", "1,1"} {
		if _, err := ParseLandmarkList(bad); err == nil {
			t.Errorf("ParseLandmarkList(%q) accepted", bad)
		}
	}
}
