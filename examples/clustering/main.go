// Graph clustering with resistance distances: embed vertices by their
// resistance distance to a handful of pivots, k-means the embedding, and
// score the clusters by conductance — recovering planted communities
// without ever forming the full distance matrix.
//
// Run with:
//
//	go run ./examples/clustering
package main

import (
	"fmt"
	"log"

	landmarkrd "landmarkrd"
	"landmarkrd/internal/randx"
)

const (
	communities   = 4
	perCommunity  = 400
	internalEdges = 8 // per vertex, within its community
	bridges       = 6 // between consecutive communities
	seed          = 17
)

func main() {
	rng := randx.New(seed)
	// Plant `communities` dense blocks in a ring, joined by a few bridges.
	n := communities * perCommunity
	b := landmarkrd.NewBuilder(n)
	truth := make([]int, n)
	for c := 0; c < communities; c++ {
		base := c * perCommunity
		for u := 0; u < perCommunity; u++ {
			truth[base+u] = c
			for e := 0; e < internalEdges; e++ {
				v := rng.Intn(perCommunity)
				if v != u {
					b.AddEdge(base+u, base+v)
				}
			}
		}
	}
	for c := 0; c < communities; c++ {
		next := (c + 1) % communities
		for i := 0; i < bridges; i++ {
			b.AddEdge(c*perCommunity+rng.Intn(perCommunity), next*perCommunity+rng.Intn(perCommunity))
		}
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planted graph: n=%d m=%d, %d communities of %d\n", g.N(), g.M(), communities, perCommunity)

	res, err := landmarkrd.ClusterGraph(g, communities, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k-means on the %d-pivot resistance embedding converged in %d rounds\n\n",
		len(res.Pivots), res.Iterations)

	// Agreement with the planted partition, maximized over label matching
	// (greedy majority matching is enough at this separation).
	labelOf := make([]int, communities)
	counts := make([][]int, communities)
	for c := range counts {
		counts[c] = make([]int, communities)
	}
	for u, c := range res.Assign {
		counts[c][truth[u]]++
	}
	for c := range counts {
		best := 0
		for l, k := range counts[c] {
			if k > counts[c][best] {
				best = l
			}
		}
		labelOf[c] = best
	}
	agree := 0
	for u, c := range res.Assign {
		if labelOf[c] == truth[u] {
			agree++
		}
	}
	fmt.Printf("planted-partition agreement: %.1f%%\n\n", 100*float64(agree)/float64(n))

	fmt.Printf("%-8s %8s %12s\n", "cluster", "size", "conductance")
	for c := range res.Sizes {
		fmt.Printf("%-8d %8d %12.4f\n", c, res.Sizes[c], res.Conductances[c])
	}
}
