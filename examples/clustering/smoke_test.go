package main

import "testing"

// TestBuilds exists so `go test ./examples/...` compiles this example in
// CI; the program itself is meant to be run by hand.
func TestBuilds(t *testing.T) {
	_ = main
}
