// Single-source similarity search with the landmark index: find the
// vertices "electrically closest" to a query vertex — the primitive behind
// resistance-based recommendation and clustering.
//
// Run with:
//
//	go run ./examples/singlesource
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	landmarkrd "landmarkrd"
)

func main() {
	// A Watts-Strogatz graph: locally clustered, so "electrically close"
	// differs interestingly from "few hops away".
	g, err := landmarkrd.WattsStrogatz(5000, 3, 0.05, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d\n", g.N(), g.M())

	v, err := landmarkrd.SelectLandmark(g, landmarkrd.MaxDegree, 1)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	idx, err := landmarkrd.BuildLandmarkIndex(g, v, landmarkrd.DiagSketch, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("landmark index (v=%d, sketch diagonal): built in %v, %d bytes\n",
		v, time.Since(start).Round(time.Millisecond), idx.MemoryBytes())

	src := 1234
	start = time.Now()
	all, err := landmarkrd.SingleSource(idx, src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-source query from %d: %v\n\n", src, time.Since(start).Round(time.Microsecond))

	order := make([]int, 0, g.N())
	for u := range all {
		if u != src {
			order = append(order, u)
		}
	}
	sort.Slice(order, func(i, j int) bool { return all[order[i]] < all[order[j]] })

	hops := g.BFS(src)
	fmt.Println("ten closest vertices by resistance distance (with hop distance):")
	for i := 0; i < 10; i++ {
		u := order[i]
		exact, err := landmarkrd.Exact(g, src, u)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2d. vertex %-6d r̂=%.4f  r=%.4f  hops=%d\n", i+1, u, all[u], exact, hops[u])
	}

	fmt.Println("\nten farthest vertices by resistance distance:")
	for i := 0; i < 10; i++ {
		u := order[len(order)-1-i]
		fmt.Printf("  %2d. vertex %-6d r̂=%.4f  hops=%d\n", i+1, u, all[u], hops[u])
	}
}
