// Quickstart: build a graph, compute exact resistance distance, and compare
// the three landmark estimators against it.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	landmarkrd "landmarkrd"
)

func main() {
	// A 20k-vertex social-style graph (preferential attachment).
	g, err := landmarkrd.BarabasiAlbert(20000, 4, 42)
	if err != nil {
		log.Fatal(err)
	}
	kappa, err := landmarkrd.ConditionNumber(g, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d kappa=%.1f\n", g.N(), g.M(), kappa)

	s, t := 17, 4242
	start := time.Now()
	exact, err := landmarkrd.Exact(g, s, t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact      r(%d,%d) = %.6f            (%v)\n", s, t, exact, time.Since(start).Round(time.Microsecond))

	for _, m := range []landmarkrd.Method{landmarkrd.AbWalk, landmarkrd.Push, landmarkrd.BiPush} {
		est, err := landmarkrd.NewEstimator(g, m, landmarkrd.Options{Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		start = time.Now()
		res, err := est.Pair(s, t)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10v r(%d,%d) = %.6f  err=%.2e (%v, landmark=%d)\n",
			m, s, t, res.Value, abs(res.Value-exact), time.Since(start).Round(time.Microsecond), est.Landmark())
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
