// Robust routing with electric flows — a road-network application of fast
// resistance/potential computation: instead of the single shortest path,
// derive a set of alternative routes from the unit s→t electric flow
// (current spreads over many parallel corridors), and compare them with
// shortest-path alternatives under random road closures.
//
// Metrics (following the electric-flow routing literature):
//   - stretch:    average alternative-path length / shortest-path length
//   - diversity:  1 − average pairwise Jaccard similarity of edge sets
//   - robustness: probability that at least one alternative survives when
//     every edge fails independently with probability pFail
//
// Run with:
//
//	go run ./examples/robustrouting
package main

import (
	"fmt"
	"log"
	"math"

	landmarkrd "landmarkrd"
	"landmarkrd/internal/graph"
	"landmarkrd/internal/randx"
)

const (
	gridSide  = 40
	nRoutes   = 6
	pFail     = 0.02
	failTrial = 2000
	seed      = 7
)

func main() {
	rng := randx.New(seed)
	g, err := graph.Grid2D(gridSide, gridSide, 0.05, rng)
	if err != nil {
		log.Fatal(err)
	}
	s, t := 0, g.N()-1
	fmt.Printf("road-like grid: n=%d m=%d, routing %d -> %d\n\n", g.N(), g.M(), s, t)

	flow, err := landmarkrd.ComputeElectricFlow(g, s, t)
	if err != nil {
		log.Fatal(err)
	}
	electric := electricRoutes(g, flow, s, t, nRoutes)
	penalty := penaltyRoutes(g, s, t, nRoutes)

	short := bfsPath(g, s, t, nil)
	fmt.Printf("shortest path length: %d\n\n", len(short)-1)
	fmt.Printf("%-16s %8s %10s %11s\n", "method", "stretch", "diversity", "robustness")
	for _, m := range []struct {
		name   string
		routes [][]int
	}{
		{"electric-flow", electric},
		{"penalty", penalty},
		{"shortest-only", [][]int{short}},
	} {
		fmt.Printf("%-16s %8.3f %10.3f %11.3f\n", m.name,
			stretch(m.routes, len(short)-1),
			diversity(m.routes),
			robustness(g, m.routes, rng))
	}
	fmt.Println("\nelectric-flow routing trades a little stretch for much higher")
	fmt.Println("diversity/robustness than repeatedly penalized shortest paths.")
}

// electricRoutes extracts vertex-level routes by repeatedly walking from s
// to t along the highest remaining flow and damping used edges.
func electricRoutes(g *graph.Graph, flow *landmarkrd.ElectricFlow, s, t, k int) [][]int {
	damp := map[[2]int]float64{}
	var routes [][]int
	for r := 0; r < k; r++ {
		path := []int{s}
		visited := map[int]bool{s: true}
		u := s
		for u != t && len(path) < g.N() {
			bestV, bestF := -1, math.Inf(-1)
			g.ForEachNeighbor(u, func(v int32, _ float64) {
				if visited[int(v)] {
					return
				}
				f, err := flow.Flow(u, int(v))
				if err != nil {
					return
				}
				f -= damp[edgeKey(u, int(v))]
				if f > bestF {
					bestF = f
					bestV = int(v)
				}
			})
			if bestV < 0 {
				break // dead end: abandon this route
			}
			u = bestV
			path = append(path, u)
			visited[u] = true
		}
		if u != t {
			continue
		}
		routes = append(routes, path)
		// Damp the used edges so the next route prefers fresh corridors.
		for i := 0; i+1 < len(path); i++ {
			damp[edgeKey(path[i], path[i+1])] += 0.25
		}
	}
	return routes
}

// penaltyRoutes repeatedly runs BFS shortest paths, penalizing (removing)
// a fraction of each found path's edges — the classic alternative-route
// baseline.
func penaltyRoutes(g *graph.Graph, s, t, k int) [][]int {
	banned := map[[2]int]bool{}
	var routes [][]int
	for r := 0; r < k; r++ {
		path := bfsPath(g, s, t, banned)
		if path == nil {
			break
		}
		routes = append(routes, path)
		// Ban every third edge of this path for subsequent searches.
		for i := 0; i+1 < len(path); i += 3 {
			banned[edgeKey(path[i], path[i+1])] = true
		}
	}
	return routes
}

// bfsPath returns a shortest path avoiding banned edges (nil if none).
func bfsPath(g *graph.Graph, s, t int, banned map[[2]int]bool) []int {
	prev := make([]int32, g.N())
	for i := range prev {
		prev[i] = -2
	}
	prev[s] = -1
	queue := []int32{int32(s)}
	for len(queue) > 0 && prev[t] == -2 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(int(u)) {
			if prev[v] != -2 || banned[edgeKey(int(u), int(v))] {
				continue
			}
			prev[v] = u
			queue = append(queue, v)
		}
	}
	if prev[t] == -2 {
		return nil
	}
	var rev []int
	for u := t; u != -1; u = int(prev[u]) {
		rev = append(rev, u)
	}
	path := make([]int, len(rev))
	for i, u := range rev {
		path[len(rev)-1-i] = u
	}
	return path
}

func edgeKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

func stretch(routes [][]int, shortest int) float64 {
	if len(routes) == 0 || shortest <= 0 {
		return math.NaN()
	}
	var sum float64
	for _, r := range routes {
		sum += float64(len(r)-1) / float64(shortest)
	}
	return sum / float64(len(routes))
}

func diversity(routes [][]int) float64 {
	if len(routes) < 2 {
		return 0
	}
	edgeSet := func(r []int) map[[2]int]bool {
		m := map[[2]int]bool{}
		for i := 0; i+1 < len(r); i++ {
			m[edgeKey(r[i], r[i+1])] = true
		}
		return m
	}
	sets := make([]map[[2]int]bool, len(routes))
	for i, r := range routes {
		sets[i] = edgeSet(r)
	}
	var sim float64
	var pairs int
	for i := range sets {
		for j := i + 1; j < len(sets); j++ {
			inter := 0
			for e := range sets[i] {
				if sets[j][e] {
					inter++
				}
			}
			union := len(sets[i]) + len(sets[j]) - inter
			if union > 0 {
				sim += float64(inter) / float64(union)
			}
			pairs++
		}
	}
	return 1 - sim/float64(pairs)
}

func robustness(g *graph.Graph, routes [][]int, rng *randx.RNG) float64 {
	if len(routes) == 0 {
		return 0
	}
	survived := 0
	for trial := 0; trial < failTrial; trial++ {
		failed := map[[2]int]bool{}
		g.ForEachEdge(func(u, v int32, _ float64) {
			if rng.Float64() < pFail {
				failed[edgeKey(int(u), int(v))] = true
			}
		})
		ok := false
		for _, r := range routes {
			alive := true
			for i := 0; i+1 < len(r); i++ {
				if failed[edgeKey(r[i], r[i+1])] {
					alive = false
					break
				}
			}
			if alive {
				ok = true
				break
			}
		}
		if ok {
			survived++
		}
	}
	return float64(survived) / failTrial
}
