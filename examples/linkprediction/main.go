// Link prediction with resistance distance — the classic application the
// paper's introduction motivates: vertices at small resistance distance are
// likely to become connected.
//
// The experiment: generate a social-style graph, hide a random 10% of its
// edges, then rank candidate vertex pairs by estimated resistance distance
// (ascending) and by two baselines (common neighbors descending, random).
// Precision@k counts how many of the top-k ranked candidates are hidden
// edges.
//
// Run with:
//
//	go run ./examples/linkprediction
package main

import (
	"fmt"
	"log"
	"sort"

	landmarkrd "landmarkrd"
	"landmarkrd/internal/graph"
	"landmarkrd/internal/randx"
)

const (
	nVertices  = 4000
	hiddenFrac = 0.10
	topK       = 100
	seed       = 2023
)

func main() {
	rng := randx.New(seed)
	full, err := graph.BarabasiAlbert(nVertices, 4, rng)
	if err != nil {
		log.Fatal(err)
	}

	// Split edges into observed and hidden.
	type edge struct{ u, v int }
	var all []edge
	full.ForEachEdge(func(u, v int32, _ float64) {
		all = append(all, edge{int(u), int(v)})
	})
	perm := rng.Perm(len(all))
	nHidden := int(hiddenFrac * float64(len(all)))
	hidden := make(map[[2]int]bool, nHidden)
	b := graph.NewBuilder(full.N())
	for i, pi := range perm {
		e := all[pi]
		if i < nHidden {
			hidden[[2]int{e.u, e.v}] = true
			continue
		}
		b.AddEdge(e.u, e.v)
	}
	obs, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	obs, ids, err := obs.LargestComponent()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("observed graph: n=%d m=%d (hidden %d edges)\n", obs.N(), obs.M(), nHidden)

	isHidden := func(u, v int) bool {
		ou, ov := int(ids[u]), int(ids[v])
		if ou > ov {
			ou, ov = ov, ou
		}
		return hidden[[2]int{ou, ov}]
	}

	// Candidate pairs: the hidden edges (positives, translated to observed
	// ids) mixed into a pool of sampled distance-2 non-edges (negatives) —
	// the standard ranking setup for link prediction.
	cands := candidatePairs(obs, rng, 5000)
	toObs := make(map[int]int, obs.N())
	for newID, origID := range ids {
		toObs[int(origID)] = newID
	}
	injected := 0
	for e := range hidden {
		u, okU := toObs[e[0]]
		v, okV := toObs[e[1]]
		if okU && okV {
			cands = append(cands, [2]int{min(u, v), max(u, v)})
			injected++
		}
	}
	fmt.Printf("candidates: %d (%d sampled distance-2 pairs + %d hidden edges)\n",
		len(cands), len(cands)-injected, injected)
	var totalHidden int
	for _, c := range cands {
		if isHidden(c[0], c[1]) {
			totalHidden++
		}
	}
	fmt.Printf("hidden edges among candidates: %d\n\n", totalHidden)

	// Score 1: resistance distance via the BiPush landmark estimator.
	est, err := landmarkrd.NewEstimator(obs, landmarkrd.BiPush, landmarkrd.Options{Seed: 7, Walks: 256})
	if err != nil {
		log.Fatal(err)
	}
	rdScore := make([]float64, len(cands))
	for i, c := range cands {
		var r landmarkrd.Estimate
		if c[0] == est.Landmark() || c[1] == est.Landmark() {
			v, err := landmarkrd.Exact(obs, c[0], c[1])
			if err != nil {
				log.Fatal(err)
			}
			r = landmarkrd.Estimate{Value: v}
		} else if r, err = est.Pair(c[0], c[1]); err != nil {
			log.Fatal(err)
		}
		rdScore[i] = r.Value
	}

	// Score 2: common neighbors (higher is better → negate for ascending).
	cnScore := make([]float64, len(cands))
	for i, c := range cands {
		cnScore[i] = -float64(commonNeighbors(obs, c[0], c[1]))
	}

	// Score 3: random.
	randScore := make([]float64, len(cands))
	for i := range randScore {
		randScore[i] = rng.Float64()
	}

	fmt.Println("precision@k (fraction of top-k candidates that are hidden edges):")
	fmt.Printf("%-22s %8s %8s %8s\n", "method", "p@10", "p@50", fmt.Sprintf("p@%d", topK))
	for _, m := range []struct {
		name  string
		score []float64
	}{
		{"resistance (BiPush)", rdScore},
		{"common neighbors", cnScore},
		{"random", randScore},
	} {
		order := argsortAsc(m.score)
		fmt.Printf("%-22s %8.3f %8.3f %8.3f\n", m.name,
			precisionAt(order, cands, isHidden, 10),
			precisionAt(order, cands, isHidden, 50),
			precisionAt(order, cands, isHidden, topK))
	}
}

// candidatePairs samples up to limit distinct distance-2 pairs.
func candidatePairs(g *graph.Graph, rng *randx.RNG, limit int) [][2]int {
	seen := make(map[[2]int]bool)
	var out [][2]int
	attempts := limit * 30
	for len(out) < limit && attempts > 0 {
		attempts--
		u := rng.Intn(g.N())
		nb := g.Neighbors(u)
		if len(nb) == 0 {
			continue
		}
		w := int(nb[rng.Intn(len(nb))])
		nb2 := g.Neighbors(w)
		v := int(nb2[rng.Intn(len(nb2))])
		if v == u || g.HasEdge(u, v) {
			continue
		}
		key := [2]int{min(u, v), max(u, v)}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, key)
	}
	return out
}

func commonNeighbors(g *graph.Graph, u, v int) int {
	a, b := g.Neighbors(u), g.Neighbors(v)
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

func argsortAsc(score []float64) []int {
	idx := make([]int, len(score))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return score[idx[a]] < score[idx[b]] })
	return idx
}

func precisionAt(order []int, cands [][2]int, isHidden func(u, v int) bool, k int) float64 {
	if k > len(order) {
		k = len(order)
	}
	hit := 0
	for _, i := range order[:k] {
		if isHidden(cands[i][0], cands[i][1]) {
			hit++
		}
	}
	return float64(hit) / float64(k)
}
