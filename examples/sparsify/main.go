// Spectral sparsification by effective resistances (Spielman-Srivastava) —
// one of the flagship downstream uses of fast resistance computation.
//
// The experiment: build a graph, estimate every edge's effective resistance
// with the sketch, sample q edges with probability proportional to
// w_e·r(e) (reweighted to stay unbiased), and verify that the sparsifier
// preserves Laplacian quadratic forms xᵀLx on random test vectors far
// better than uniform edge sampling with the same budget.
//
// Run with:
//
//	go run ./examples/sparsify
package main

import (
	"fmt"
	"log"
	"math"

	landmarkrd "landmarkrd"
	"landmarkrd/internal/graph"
	"landmarkrd/internal/lap"
	"landmarkrd/internal/randx"
)

func main() {
	rng := randx.New(99)
	// Two dense communities joined by a handful of bridges: the bridges
	// have effective resistance ≈ 1 and MUST survive sparsification, which
	// leverage-score sampling guarantees and uniform sampling does not.
	g, err := twoCommunities(500, 20, 4, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d (two dense communities, 4 bridges)\n", g.N(), g.M())

	sk, err := landmarkrd.BuildSketch(g, 0.3, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sketch: k=%d rows\n", sk.K())

	var edges []edge
	var totalP float64
	var skErr error
	g.ForEachEdge(func(u, v int32, w float64) {
		if skErr != nil {
			return
		}
		r, err := sk.Resistance(int(u), int(v))
		if err != nil {
			skErr = err
			return
		}
		p := w * r // leverage score; sums to ≈ n-1 (Foster)
		edges = append(edges, edge{int(u), int(v), w, p})
		totalP += p
	})
	if skErr != nil {
		log.Fatal(skErr)
	}
	fmt.Printf("Foster check: sum of leverage scores = %.1f (expect n-1 = %d)\n\n", totalP, g.N()-1)

	// Sample q edges (with replacement) by leverage and uniformly, and
	// measure how well each sparsifier preserves the community-cut
	// quadratic form — the form that depends only on the bridges. Repeat
	// the sampling to average out luck.
	const reps = 50
	q := 3 * g.N()
	lop := &lap.Laplacian{G: g}
	half := g.N() / 2
	cut := make([]float64, g.N())
	for j := range cut {
		if j < half {
			cut[j] = 1
		} else {
			cut[j] = -1
		}
	}
	wantCut := quadForm(lop, cut)
	var levCutErr, uniCutErr, levRandErr, uniRandErr float64
	x := make([]float64, g.N())
	for rep := 0; rep < reps; rep++ {
		lev := sampleSparsifier(g.N(), edges, q, func(e edge) float64 { return e.p / totalP }, rng)
		uni := sampleSparsifier(g.N(), edges, q, func(edge) float64 { return 1 / float64(len(edges)) }, rng)
		levCutErr += math.Abs(quadFormGraph(lev, cut)-wantCut) / wantCut / reps
		uniCutErr += math.Abs(quadFormGraph(uni, cut)-wantCut) / wantCut / reps
		for j := range x {
			x[j] = rng.Rademacher()
		}
		want := quadForm(lop, x)
		levRandErr += math.Abs(quadFormGraph(lev, x)-want) / want / reps
		uniRandErr += math.Abs(quadFormGraph(uni, x)-want) / want / reps
	}
	fmt.Printf("mean relative error over %d sparsifier draws (q = %d sampled edges):\n", reps, q)
	fmt.Printf("  community-cut form:  leverage %.3f   uniform %.3f\n", levCutErr, uniCutErr)
	fmt.Printf("  random +/-1 forms:   leverage %.3f   uniform %.3f\n", levRandErr, uniRandErr)
	if levCutErr < uniCutErr {
		fmt.Println("  -> resistance-based sampling preserves the bottleneck cut far better, as theory predicts")
	}
}

type edge struct {
	u, v int
	w, p float64
}

// twoCommunities builds two BA communities of size half each, joined by
// nBridges random edges.
func twoCommunities(half, k, nBridges int, rng *randx.RNG) (*graph.Graph, error) {
	a, err := graph.BarabasiAlbert(half, k, rng)
	if err != nil {
		return nil, err
	}
	c, err := graph.BarabasiAlbert(half, k, rng)
	if err != nil {
		return nil, err
	}
	b := graph.NewBuilder(2 * half)
	a.ForEachEdge(func(u, v int32, w float64) { b.AddWeightedEdge(int(u), int(v), w) })
	c.ForEachEdge(func(u, v int32, w float64) { b.AddWeightedEdge(int(u)+half, int(v)+half, w) })
	for i := 0; i < nBridges; i++ {
		b.AddEdge(rng.Intn(half), half+rng.Intn(half))
	}
	return b.Build()
}

type sparseEdge struct {
	u, v int
	w    float64
}

func sampleSparsifier(n int, edges []edge, q int, prob func(e edge) float64, rng *randx.RNG) []sparseEdge {
	// Cumulative distribution for edge sampling.
	cum := make([]float64, len(edges))
	acc := 0.0
	for i, e := range edges {
		acc += prob(e)
		cum[i] = acc
	}
	weights := make(map[[2]int]float64)
	for i := 0; i < q; i++ {
		target := rng.Float64() * acc
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		e := edges[lo]
		p := prob(e)
		if p <= 0 {
			continue
		}
		weights[[2]int{e.u, e.v}] += e.w / (float64(q) * p)
	}
	out := make([]sparseEdge, 0, len(weights))
	for k, w := range weights {
		out = append(out, sparseEdge{k[0], k[1], w})
	}
	return out
}

func quadForm(l *lap.Laplacian, x []float64) float64 {
	y := make([]float64, len(x))
	l.Apply(y, x)
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

func quadFormGraph(edges []sparseEdge, x []float64) float64 {
	var s float64
	for _, e := range edges {
		d := x[e.u] - x[e.v]
		s += e.w * d * d
	}
	return s
}
