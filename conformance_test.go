package landmarkrd

// The conformance suite: every estimator in the module — the three
// landmark methods, the single-source index in all three diagonal modes,
// the exact solvers (CG, approximate Cholesky, dynamic Sherman–Morrison),
// the extended comparators (Lanczos, Chebyshev, power method, lazy walks,
// sketch) — is checked against the dense oracle over a golden corpus of
// deterministic graphs stored under testdata/corpus.
//
// Tolerances are not guesses:
//   - exact paths must agree to 1e-9 (relative above r = 1);
//   - Push-family methods must respect their own reported ErrBound;
//   - Monte Carlo methods are run at K fixed seeds and the sample mean
//     must land within a Chebyshev-style band 6·σ̂/√K (plus any documented
//     truncation bias) of the oracle value — a bound loose enough to hold
//     with margin for a correct estimator and tight enough that a biased
//     one (wrong normalization, off-by-one in walk length, truncation
//     treated as absorption) fails immediately.

import (
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"testing"

	"landmarkrd/internal/baseline"
	"landmarkrd/internal/chol"
	"landmarkrd/internal/core"
	"landmarkrd/internal/dynamic"
	"landmarkrd/internal/lanczos"
	"landmarkrd/internal/lap"
	"landmarkrd/internal/oracle"
	"landmarkrd/internal/randx"
)

const (
	corpusDir = "testdata/corpus"
	// exactTol is the agreement bar for solver-grade methods, relative
	// above r = 1.
	exactTol = 1e-9
	// mcSeeds is the number of fixed seeds each Monte Carlo method runs at.
	mcSeeds = 8
)

// conformanceCase is one golden graph with its oracle and derived query
// plan: a fixed landmark (max degree, as every default constructor picks)
// and deterministic pairs that avoid it.
type conformanceCase struct {
	Name     string
	G        *Graph
	O        *oracle.Oracle
	Landmark int
	Pairs    [][2]int
	Kappa    float64
}

var (
	confOnce  sync.Once
	confCases []conformanceCase
	confErr   error
)

// conformanceCases loads the corpus and builds the dense oracles once per
// test binary.
func conformanceCases(t *testing.T) []conformanceCase {
	t.Helper()
	confOnce.Do(func() {
		corpus, err := oracle.LoadCorpus(corpusDir)
		if err != nil {
			confErr = err
			return
		}
		for _, cg := range corpus {
			o, err := oracle.New(cg.G)
			if err != nil {
				confErr = fmt.Errorf("oracle for %s: %w", cg.Name, err)
				return
			}
			landmark := cg.G.MaxDegreeVertex()
			h := fnv.New64a()
			h.Write([]byte(cg.Name))
			rng := randx.New(h.Sum64() | 1)
			var pairs [][2]int
			for len(pairs) < 3 {
				s, u := rng.Intn(cg.G.N()), rng.Intn(cg.G.N())
				if s == u || s == landmark || u == landmark {
					continue
				}
				pairs = append(pairs, [2]int{s, u})
			}
			kappa, err := ConditionNumber(cg.G, 1)
			if err != nil {
				confErr = fmt.Errorf("kappa for %s: %w", cg.Name, err)
				return
			}
			confCases = append(confCases, conformanceCase{
				Name: cg.Name, G: cg.G, O: o,
				Landmark: landmark, Pairs: pairs, Kappa: kappa,
			})
		}
	})
	if confErr != nil {
		t.Fatalf("building conformance corpus: %v", confErr)
	}
	return confCases
}

// checkClose fails unless got is within tol of want, relative above 1.
func checkClose(t *testing.T, what string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) {
		t.Errorf("%s: got NaN, want %v", what, want)
		return
	}
	if diff := math.Abs(got - want); diff > tol*math.Max(1, math.Abs(want)) {
		t.Errorf("%s: got %v, want %v (diff %.3g, tol %.3g)", what, got, want, diff, tol)
	}
}

// TestConformanceOracleSelfCheck validates the oracle itself on every
// corpus graph: finite, non-negative, and satisfying Foster's theorem
// Σ w_e·r(e) = n − 1, which no wrong pseudo-inverse passes by accident.
func TestConformanceOracleSelfCheck(t *testing.T) {
	for _, c := range conformanceCases(t) {
		t.Run(c.Name, func(t *testing.T) {
			if err := c.O.CheckFinite(); err != nil {
				t.Fatal(err)
			}
			var sum float64
			var ferr error
			c.G.ForEachEdge(func(u, v int32, w float64) {
				r, err := c.O.Resistance(int(u), int(v))
				if err != nil {
					ferr = err
					return
				}
				sum += w * r
			})
			if ferr != nil {
				t.Fatal(ferr)
			}
			checkClose(t, "Foster sum", sum, float64(c.G.N()-1), 1e-7)
		})
	}
}

// TestConformanceExact pins every solver-grade path to the oracle at
// 1e-9: the public CG solve, commute time, electric flow and potentials,
// the approximate-Cholesky-preconditioned solver, the Sherman–Morrison
// dynamic updater with zero updates, and the DiagExactCG single-source
// index at a tightened tolerance.
func TestConformanceExact(t *testing.T) {
	for _, c := range conformanceCases(t) {
		t.Run(c.Name, func(t *testing.T) {
			cs, err := chol.NewSolver(c.G, c.Landmark, 1e-12, chol.Options{Seed: 1})
			if err != nil {
				t.Fatalf("chol.NewSolver: %v", err)
			}
			dyn, err := dynamic.New(c.G, 1e-12)
			if err != nil {
				t.Fatalf("dynamic.New: %v", err)
			}
			idx, err := BuildLandmarkIndex(c.G, c.Landmark, DiagExactCG, 1)
			if err != nil {
				t.Fatalf("BuildLandmarkIndex: %v", err)
			}
			for _, p := range c.Pairs {
				s, u := p[0], p[1]
				want, err := c.O.Resistance(s, u)
				if err != nil {
					t.Fatal(err)
				}
				tag := fmt.Sprintf("(%d,%d)", s, u)

				got, err := Exact(c.G, s, u)
				if err != nil {
					t.Fatalf("Exact%s: %v", tag, err)
				}
				checkClose(t, "Exact"+tag, got, want, exactTol)

				ct, err := CommuteTime(c.G, s, u)
				if err != nil {
					t.Fatalf("CommuteTime%s: %v", tag, err)
				}
				wantCT, _ := c.O.CommuteTime(s, u)
				checkClose(t, "CommuteTime"+tag, ct, wantCT, exactTol)

				cr, err := cs.Resistance(s, u)
				if err != nil {
					t.Fatalf("chol.Resistance%s: %v", tag, err)
				}
				checkClose(t, "chol.Resistance"+tag, cr, want, exactTol)

				dr, err := dyn.Resistance(s, u)
				if err != nil {
					t.Fatalf("dynamic.Resistance%s: %v", tag, err)
				}
				checkClose(t, "dynamic.Resistance"+tag, dr, want, exactTol)

				phi, err := Potential(c.G, s, u)
				if err != nil {
					t.Fatalf("Potential%s: %v", tag, err)
				}
				checkClose(t, "Potential drop"+tag, phi[s]-phi[u], want, exactTol)

				flow, err := ComputeElectricFlow(c.G, s, u)
				if err != nil {
					t.Fatalf("ComputeElectricFlow%s: %v", tag, err)
				}
				checkClose(t, "flow.Energy"+tag, flow.Energy(), want, exactTol)

				// One tight single-source sweep per pair's source.
				ss, err := idx.SingleSource(s, core.SingleSourceOptions{Tol: 1e-12})
				if err != nil {
					t.Fatalf("SingleSource%s: %v", tag, err)
				}
				wantSS, err := c.O.SingleSource(s)
				if err != nil {
					t.Fatal(err)
				}
				worst, at := 0.0, -1
				for v := range ss {
					d := math.Abs(ss[v]-wantSS[v]) / math.Max(1, math.Abs(wantSS[v]))
					if d > worst {
						worst, at = d, v
					}
				}
				if worst > exactTol {
					t.Errorf("SingleSource(%d): worst entry %d off by %.3g (tol %.3g)", s, at, worst, exactTol)
				}
			}
		})
	}
}

// TestConformanceDense checks the dense reference paths against the
// oracle on the smallest corpus graphs (they are mutually independent
// implementations: pseudo-inverse + J/n trick vs grounded Cholesky).
func TestConformanceDense(t *testing.T) {
	for _, c := range conformanceCases(t) {
		if c.G.N() > 64 {
			continue
		}
		t.Run(c.Name, func(t *testing.T) {
			m, err := lap.DenseResistanceMatrix(c.G)
			if err != nil {
				t.Fatalf("DenseResistanceMatrix: %v", err)
			}
			want := c.O.ResistanceMatrix()
			for i := 0; i < c.G.N(); i++ {
				for j := 0; j < c.G.N(); j++ {
					if math.Abs(m.At(i, j)-want.At(i, j)) > 1e-8*math.Max(1, want.At(i, j)) {
						t.Fatalf("dense r(%d,%d) = %v, oracle %v", i, j, m.At(i, j), want.At(i, j))
					}
				}
			}
		})
	}
}

// TestConformancePushBound checks the deterministic Push estimator the
// only way that is fair to it: the answer must be within its own reported
// a-posteriori ErrBound of the truth, and PairWithinEps must deliver the
// eps it promises.
func TestConformancePushBound(t *testing.T) {
	for _, c := range conformanceCases(t) {
		t.Run(c.Name, func(t *testing.T) {
			est, err := NewEstimatorAt(c.G, Push, c.Landmark, Options{})
			if err != nil {
				t.Fatalf("NewEstimatorAt: %v", err)
			}
			for _, p := range c.Pairs {
				s, u := p[0], p[1]
				want, err := c.O.Resistance(s, u)
				if err != nil {
					t.Fatal(err)
				}
				res, err := est.Pair(s, u)
				if err != nil {
					t.Fatalf("Push.Pair(%d,%d): %v", s, u, err)
				}
				if res.ErrBound <= 0 {
					t.Errorf("Push(%d,%d): no error bound reported", s, u)
				}
				if diff := math.Abs(res.Value - want); diff > res.ErrBound+1e-12 {
					t.Errorf("Push(%d,%d): |%v − %v| = %.3g exceeds own ErrBound %.3g",
						s, u, res.Value, want, diff, res.ErrBound)
				}
				const eps = 1e-3
				res, err = est.PairWithinEps(s, u, eps)
				if err != nil {
					t.Fatalf("PairWithinEps(%d,%d): %v", s, u, err)
				}
				if diff := math.Abs(res.Value - want); diff > eps+1e-12 {
					t.Errorf("PairWithinEps(%d,%d): off by %.3g > eps %.3g", s, u, diff, eps)
				}
			}
		})
	}
}

// TestConformanceLanczos checks the global Lanczos iteration at full
// Krylov dimension (where breakdown makes it exact up to rounding) and
// the local Lanczos push at a tight sparsification threshold.
func TestConformanceLanczos(t *testing.T) {
	for _, c := range conformanceCases(t) {
		t.Run(c.Name, func(t *testing.T) {
			for _, p := range c.Pairs[:1] {
				s, u := p[0], p[1]
				want, err := c.O.Resistance(s, u)
				if err != nil {
					t.Fatal(err)
				}
				res, err := lanczos.Iteration(c.G, s, u, c.G.N())
				if err != nil {
					t.Fatalf("lanczos.Iteration: %v", err)
				}
				checkClose(t, fmt.Sprintf("lanczos.Iteration(%d,%d)", s, u), res.Value, want, 1e-6)

				pres, err := lanczos.Push(c.G, s, u, lanczos.PushOptions{K: c.G.N(), Epsilon: 1e-9})
				if err != nil {
					t.Fatalf("lanczos.Push: %v", err)
				}
				checkClose(t, fmt.Sprintf("lanczos.Push(%d,%d)", s, u), pres.Value, want, 1e-5)
			}
		})
	}
}

// TestConformanceSeriesMethods checks the deterministic series solvers
// (truncated power method, Chebyshev semi-iteration) at truncation lengths
// derived from the measured condition number, against tolerances implied
// by those lengths.
func TestConformanceSeriesMethods(t *testing.T) {
	for _, c := range conformanceCases(t) {
		t.Run(c.Name, func(t *testing.T) {
			steps := baseline.GroundTruthSteps(c.Kappa, 1e-7)
			// Chebyshev needs a LOWER bound on λ₂ = 2/κ; pad the Lanczos
			// estimate by 20% to stay on the safe side.
			lmin := 2 / (1.2 * c.Kappa)
			iters := int(20*math.Sqrt(c.Kappa)) + 64
			for _, p := range c.Pairs[:1] {
				s, u := p[0], p[1]
				want, err := c.O.Resistance(s, u)
				if err != nil {
					t.Fatal(err)
				}
				pm, err := baseline.PowerMethod(c.G, s, u, baseline.PowerMethodOptions{Steps: steps})
				if err != nil {
					t.Fatalf("PowerMethod: %v", err)
				}
				checkClose(t, fmt.Sprintf("PowerMethod(%d,%d)", s, u), pm.Value, want, 1e-5)

				cb, err := baseline.ChebyshevRD(c.G, s, u, baseline.ChebyshevOptions{Iterations: iters, LambdaMin: lmin})
				if err != nil {
					t.Fatalf("ChebyshevRD: %v", err)
				}
				checkClose(t, fmt.Sprintf("ChebyshevRD(%d,%d)", s, u), cb.Value, want, 1e-4)
			}
		})
	}
}

// mcMethod is one Monte Carlo estimator under statistical conformance
// testing: sample(seed) returns one estimate of r for the fixed pair.
type mcMethod struct {
	name string
	// bias is the documented truncation-bias allowance added to the band.
	bias float64
	// minKappaSkip skips the method on graphs above this condition number
	// (0 = never skip): the lazy-walk series methods need Length ∝ κ and
	// are conformance-tested where that is affordable.
	maxKappa float64
	sample   func(c conformanceCase, s, u int, seed uint64) (float64, error)
}

// TestConformanceMonteCarlo runs every sampling estimator at mcSeeds fixed
// seeds per query and requires the sample mean to sit inside the
// Chebyshev-style band 6·σ̂/√K + bias around the oracle value. The seeds
// are fixed, so the test is deterministic; the band is derived, not tuned.
func TestConformanceMonteCarlo(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical conformance is not a -short test")
	}
	methods := []mcMethod{
		{
			name: "AbWalk",
			sample: func(c conformanceCase, s, u int, seed uint64) (float64, error) {
				est, err := NewEstimatorAt(c.G, AbWalk, c.Landmark, Options{Seed: seed})
				if err != nil {
					return 0, err
				}
				res, err := est.Pair(s, u)
				return res.Value, err
			},
		},
		{
			name: "BiPush",
			sample: func(c conformanceCase, s, u int, seed uint64) (float64, error) {
				est, err := NewEstimatorAt(c.G, BiPush, c.Landmark, Options{Seed: seed})
				if err != nil {
					return 0, err
				}
				res, err := est.Pair(s, u)
				return res.Value, err
			},
		},
		{
			name: "MultiLandmark",
			sample: func(c conformanceCase, s, u int, seed uint64) (float64, error) {
				est, err := NewMultiLandmark(c.G, 3, Options{Seed: seed})
				if err != nil {
					return 0, err
				}
				res, err := est.Pair(s, u)
				return res.Value, err
			},
		},
		{
			name: "CommuteMC",
			// Hitting-time truncation at the default cap leaves a small
			// negative bias on hard graphs.
			bias: 0.02,
			sample: func(c conformanceCase, s, u int, seed uint64) (float64, error) {
				res, err := baseline.CommuteMC(c.G, s, u, baseline.CommuteMCOptions{Walks: 400}, randx.New(seed))
				return res.Value, err
			},
		},
		{
			name:     "LazyWalkRD",
			bias:     2e-3, // series truncated at GroundTruthSteps(κ, 1e-3)
			maxKappa: 40,
			sample: func(c conformanceCase, s, u int, seed uint64) (float64, error) {
				length := baseline.GroundTruthSteps(c.Kappa, 1e-3)
				res, err := baseline.LazyWalkRD(c.G, s, u, baseline.LazyWalkOptions{Length: length, Walks: 3000}, randx.New(seed))
				return res.Value, err
			},
		},
		{
			name:     "AdaptiveLazyWalk",
			bias:     0.05 + 2e-3, // target half-width + series truncation
			maxKappa: 40,
			sample: func(c conformanceCase, s, u int, seed uint64) (float64, error) {
				length := baseline.GroundTruthSteps(c.Kappa, 1e-3)
				res, err := baseline.AdaptiveLazyWalk(c.G, s, u, baseline.AdaptiveOptions{Epsilon: 0.05, Length: length}, randx.New(seed))
				return res.Value, err
			},
		},
	}
	for _, c := range conformanceCases(t) {
		for _, m := range methods {
			if m.maxKappa > 0 && c.Kappa > m.maxKappa {
				continue
			}
			t.Run(c.Name+"/"+m.name, func(t *testing.T) {
				for _, p := range c.Pairs[:2] {
					s, u := p[0], p[1]
					want, err := c.O.Resistance(s, u)
					if err != nil {
						t.Fatal(err)
					}
					var vals []float64
					for k := 0; k < mcSeeds; k++ {
						v, err := m.sample(c, s, u, uint64(1000*k+7))
						if err != nil {
							t.Fatalf("%s seed %d: %v", m.name, k, err)
						}
						if math.IsNaN(v) || math.IsInf(v, 0) {
							t.Fatalf("%s seed %d: non-finite estimate %v", m.name, k, v)
						}
						if v < 0 {
							t.Fatalf("%s seed %d: negative resistance %v", m.name, k, v)
						}
						vals = append(vals, v)
					}
					mean, sd := meanStd(vals)
					band := 6*sd/math.Sqrt(float64(len(vals))) + m.bias*math.Max(1, want) + 1e-9
					if diff := math.Abs(mean - want); diff > band {
						t.Errorf("%s(%d,%d): mean %v vs oracle %v — off by %.4g, band %.4g (σ̂ %.4g)",
							m.name, s, u, mean, want, diff, band, sd)
					}
				}
			})
		}
	}
}

// TestConformanceSketch checks the Spielman–Srivastava sketch (and the
// DiagSketch index mode built on it) against its ε-relative guarantee,
// with a factor-2 allowance for the with-high-probability nature of the
// JL embedding at fixed seeds.
func TestConformanceSketch(t *testing.T) {
	const eps = 0.25
	for _, c := range conformanceCases(t) {
		t.Run(c.Name, func(t *testing.T) {
			sk, err := BuildSketch(c.G, eps, 12345)
			if err != nil {
				t.Fatalf("BuildSketch: %v", err)
			}
			for _, p := range c.Pairs {
				s, u := p[0], p[1]
				want, err := c.O.Resistance(s, u)
				if err != nil {
					t.Fatal(err)
				}
				got, err := sk.Resistance(s, u)
				if err != nil {
					t.Fatalf("sketch.Resistance: %v", err)
				}
				if rel := math.Abs(got-want) / want; rel > 2*eps {
					t.Errorf("sketch(%d,%d): %v vs %v — relative error %.3f > %.3f", s, u, got, want, rel, 2*eps)
				}
			}
		})
	}
}

// TestConformanceIndexModes checks the two approximate diagonal modes of
// the single-source index: DiagMC entries via the multi-seed Chebyshev
// band, DiagSketch entries via the sketch's relative guarantee.
func TestConformanceIndexModes(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical conformance is not a -short test")
	}
	var c conformanceCase
	found := false
	for _, cc := range conformanceCases(t) {
		if cc.Name == "ba_120_2_weighted" {
			c, found = cc, true
		}
	}
	if !found {
		t.Fatal("corpus graph ba_120_2_weighted missing")
	}
	s := c.Pairs[0][0]
	want, err := c.O.SingleSource(s)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("DiagMC", func(t *testing.T) {
		const builds = 6
		vecs := make([][]float64, builds)
		for k := 0; k < builds; k++ {
			idx, err := BuildLandmarkIndex(c.G, c.Landmark, DiagMC, uint64(5000+k))
			if err != nil {
				t.Fatalf("BuildLandmarkIndex: %v", err)
			}
			vecs[k], err = idx.SingleSource(s, core.SingleSourceOptions{Tol: 1e-12})
			if err != nil {
				t.Fatalf("SingleSource: %v", err)
			}
		}
		for v := 0; v < c.G.N(); v++ {
			if v == s {
				continue
			}
			samples := make([]float64, builds)
			for k := range vecs {
				samples[k] = vecs[k][v]
			}
			mean, sd := meanStd(samples)
			band := 6*sd/math.Sqrt(builds) + 0.02*math.Max(1, want[v])
			if diff := math.Abs(mean - want[v]); diff > band {
				t.Errorf("DiagMC entry %d: mean %v vs oracle %v — off by %.4g, band %.4g", v, mean, want[v], diff, band)
			}
		}
	})

	t.Run("DiagSketch", func(t *testing.T) {
		idx, err := BuildLandmarkIndexOpts(c.G, c.Landmark, IndexBuildOptions{Mode: DiagSketch, Seed: 777})
		if err != nil {
			t.Fatalf("BuildLandmarkIndexOpts: %v", err)
		}
		got, err := idx.SingleSource(s, core.SingleSourceOptions{Tol: 1e-12})
		if err != nil {
			t.Fatalf("SingleSource: %v", err)
		}
		// Default sketch epsilon is 0.3; allow 2× for fixed-seed whp.
		for v := 0; v < c.G.N(); v++ {
			if v == s || want[v] == 0 {
				continue
			}
			if rel := math.Abs(got[v]-want[v]) / want[v]; rel > 0.6 {
				t.Errorf("DiagSketch entry %d: %v vs %v — relative error %.3f", v, got[v], want[v], rel)
			}
		}
	})
}

// TestConformanceMetamorphic drives the library's public exact paths
// through the metamorphic transforms: the laws hold in closed form, so
// any disagreement indicts the estimator, not the test.
func TestConformanceMetamorphic(t *testing.T) {
	base := conformanceCases(t)[0] // ba_120_2_weighted (sorted order)
	g := base.G
	s, u := base.Pairs[0][0], base.Pairs[0][1]
	r0, err := base.O.Resistance(s, u)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("WeightScaling", func(t *testing.T) {
		const cfac = 2.5
		scaled, err := oracle.ScaleWeights(g, cfac)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Exact(scaled, s, u)
		if err != nil {
			t.Fatal(err)
		}
		checkClose(t, "scaled Exact", got, r0/cfac, exactTol)
	})

	t.Run("RelabelInvariance", func(t *testing.T) {
		perm := randx.New(31).Perm(g.N())
		rg, err := oracle.Relabel(g, perm)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Exact(rg, perm[s], perm[u])
		if err != nil {
			t.Fatal(err)
		}
		checkClose(t, "relabelled Exact", got, r0, exactTol)
	})

	t.Run("RayleighViaDynamic", func(t *testing.T) {
		// The dynamic updater IS an add-edge transform; its answer after
		// an insertion must match the Sherman–Morrison closed form
		// predicted from the original oracle, and must not exceed r0.
		dyn, err := NewDynamic(g)
		if err != nil {
			t.Fatal(err)
		}
		a, b, w := s, (u+7)%g.N(), 1.5
		if b == a {
			b = (b + 1) % g.N()
		}
		if err := dyn.AddEdge(a, b, w); err != nil {
			t.Fatal(err)
		}
		got, err := dyn.Resistance(s, u)
		if err != nil {
			t.Fatal(err)
		}
		want, err := oracle.PredictAddEdge(base.O, a, b, w, s, u)
		if err != nil {
			t.Fatal(err)
		}
		checkClose(t, "dynamic after AddEdge", got, want, 1e-7)
		if got > r0+exactTol {
			t.Errorf("Rayleigh violated: %v > %v after adding an edge", got, r0)
		}
	})

	t.Run("SeriesParallel", func(t *testing.T) {
		paths := [][]float64{{1}, {2, 2}, {1, 1, 1}}
		pg, err := oracle.ParallelPaths(paths)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Exact(pg, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		checkClose(t, "parallel-paths Exact", got, oracle.ParallelResistance(paths), exactTol)
	})

	t.Run("GlueCutVertex", func(t *testing.T) {
		tail := []float64{1, 0.5, 2}
		path, err := oracle.PathGraph(tail)
		if err != nil {
			t.Fatal(err)
		}
		cut := base.Landmark
		glued, err := oracle.Glue(g, cut, path, 0)
		if err != nil {
			t.Fatal(err)
		}
		end := oracle.Glued2(g, cut, 0, len(tail))
		got, err := Exact(glued, s, end)
		if err != nil {
			t.Fatal(err)
		}
		rCut, err := base.O.Resistance(s, cut)
		if err != nil {
			t.Fatal(err)
		}
		checkClose(t, "glued Exact", got, rCut+oracle.SeriesResistance(tail), exactTol)
	})

	t.Run("CommuteIdentity", func(t *testing.T) {
		ct, err := CommuteTime(g, s, u)
		if err != nil {
			t.Fatal(err)
		}
		checkClose(t, "commute identity", ct, g.Volume()*r0, exactTol)
	})
}

func meanStd(xs []float64) (mean, sd float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}
