package landmarkrd_test

import (
	"math"
	"testing"

	landmarkrd "landmarkrd"
)

func TestPairsBatchMatchesExact(t *testing.T) {
	g, err := landmarkrd.BarabasiAlbert(400, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	queries := []landmarkrd.PairQuery{
		{S: 1, T: 100}, {S: 2, T: 200}, {S: 3, T: 300}, {S: 4, T: 350},
		{S: 5, T: 250}, {S: 6, T: 150}, {S: 7, T: 50}, {S: 8, T: 399},
	}
	results, err := landmarkrd.Pairs(g, landmarkrd.Push, queries, landmarkrd.BatchOptions{
		Options:         landmarkrd.Options{Seed: 3, Theta: 1e-8},
		Workers:         4,
		ExactOnConflict: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(queries) {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
		if r.S != queries[i].S || r.T != queries[i].T {
			t.Errorf("result %d out of order: %+v", i, r.PairQuery)
		}
		want, _ := landmarkrd.Exact(g, r.S, r.T)
		if math.Abs(r.Estimate.Value-want) > 1e-4 {
			t.Errorf("query %d: %v, want %v", i, r.Estimate.Value, want)
		}
	}
}

func TestPairsBatchLandmarkConflict(t *testing.T) {
	g, err := landmarkrd.BarabasiAlbert(100, 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := landmarkrd.SelectLandmark(g, landmarkrd.MaxDegree, 1)
	queries := []landmarkrd.PairQuery{{S: v, T: (v + 1) % g.N()}}

	// Without ExactOnConflict the query fails.
	results, err := landmarkrd.Pairs(g, landmarkrd.BiPush, queries, landmarkrd.BatchOptions{
		Options: landmarkrd.Options{Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != landmarkrd.ErrLandmarkConflict {
		t.Errorf("conflict error = %v", results[0].Err)
	}

	// With it, the exact value is returned.
	results, err = landmarkrd.Pairs(g, landmarkrd.BiPush, queries, landmarkrd.BatchOptions{
		Options:         landmarkrd.Options{Seed: 1},
		ExactOnConflict: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Fatalf("exact fallback failed: %v", results[0].Err)
	}
	want, _ := landmarkrd.Exact(g, queries[0].S, queries[0].T)
	if math.Abs(results[0].Estimate.Value-want) > 1e-8 {
		t.Errorf("fallback value %v, want %v", results[0].Estimate.Value, want)
	}
}

func TestPairsBatchPinnedLandmark(t *testing.T) {
	g, _ := landmarkrd.BarabasiAlbert(100, 3, 13)
	_, err := landmarkrd.Pairs(g, landmarkrd.Push, []landmarkrd.PairQuery{{S: 1, T: 2}},
		landmarkrd.BatchOptions{PinLandmark: true, Landmark: 999})
	if err == nil {
		t.Error("invalid pinned landmark accepted")
	}
	res, err := landmarkrd.Pairs(g, landmarkrd.Push, []landmarkrd.PairQuery{{S: 1, T: 2}},
		landmarkrd.BatchOptions{PinLandmark: true, Landmark: 50, Options: landmarkrd.Options{Theta: 1e-8}})
	if err != nil || res[0].Err != nil {
		t.Fatalf("pinned batch failed: %v %v", err, res[0].Err)
	}
}

func TestPairsBatchEmpty(t *testing.T) {
	g, _ := landmarkrd.BarabasiAlbert(50, 3, 14)
	res, err := landmarkrd.Pairs(g, landmarkrd.Push, nil, landmarkrd.BatchOptions{})
	if err != nil || res != nil {
		t.Errorf("empty batch: %v, %v", res, err)
	}
}

func TestPairsBatchManyWorkersRace(t *testing.T) {
	// More workers than queries plus the race detector (when enabled via
	// `go test -race`) exercises concurrent access to the shared graph.
	g, err := landmarkrd.WattsStrogatz(300, 3, 0.2, 15)
	if err != nil {
		t.Fatal(err)
	}
	var queries []landmarkrd.PairQuery
	for i := 0; i < 12; i++ {
		queries = append(queries, landmarkrd.PairQuery{S: i, T: 150 + i})
	}
	results, err := landmarkrd.Pairs(g, landmarkrd.AbWalk, queries, landmarkrd.BatchOptions{
		Options:         landmarkrd.Options{Seed: 2, Walks: 200},
		Workers:         64,
		ExactOnConflict: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Errorf("query %d failed: %v", i, r.Err)
		}
	}
}
