package landmarkrd_test

import (
	"math"
	"testing"

	landmarkrd "landmarkrd"
)

func TestPairsBatchMatchesExact(t *testing.T) {
	g, err := landmarkrd.BarabasiAlbert(400, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	queries := []landmarkrd.PairQuery{
		{S: 1, T: 100}, {S: 2, T: 200}, {S: 3, T: 300}, {S: 4, T: 350},
		{S: 5, T: 250}, {S: 6, T: 150}, {S: 7, T: 50}, {S: 8, T: 399},
	}
	results, err := landmarkrd.Pairs(g, landmarkrd.Push, queries, landmarkrd.BatchOptions{
		Options: landmarkrd.Options{Seed: 3, Theta: 1e-8},
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(queries) {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
		if r.S != queries[i].S || r.T != queries[i].T {
			t.Errorf("result %d out of order: %+v", i, r.PairQuery)
		}
		want, _ := landmarkrd.Exact(g, r.S, r.T)
		if math.Abs(r.Estimate.Value-want) > 1e-4 {
			t.Errorf("query %d: %v, want %v", i, r.Estimate.Value, want)
		}
	}
}

func TestPairsBatchLandmarkConflict(t *testing.T) {
	g, err := landmarkrd.BarabasiAlbert(100, 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := landmarkrd.SelectLandmark(g, landmarkrd.MaxDegree, 1)
	queries := []landmarkrd.PairQuery{{S: v, T: (v + 1) % g.N()}}

	// ConflictError fails the individual query.
	results, err := landmarkrd.Pairs(g, landmarkrd.BiPush, queries, landmarkrd.BatchOptions{
		Options:    landmarkrd.Options{Seed: 1},
		OnConflict: landmarkrd.ConflictError,
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != landmarkrd.ErrLandmarkConflict {
		t.Errorf("conflict error = %v", results[0].Err)
	}

	// The zero value, ConflictExact, answers it exactly instead.
	results, err = landmarkrd.Pairs(g, landmarkrd.BiPush, queries, landmarkrd.BatchOptions{
		Options: landmarkrd.Options{Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Fatalf("exact fallback failed: %v", results[0].Err)
	}
	want, _ := landmarkrd.Exact(g, queries[0].S, queries[0].T)
	if math.Abs(results[0].Estimate.Value-want) > 1e-8 {
		t.Errorf("fallback value %v, want %v", results[0].Estimate.Value, want)
	}
}

func TestPairsBatchPinnedLandmark(t *testing.T) {
	g, _ := landmarkrd.BarabasiAlbert(100, 3, 13)
	if _, err := landmarkrd.Pairs(g, landmarkrd.Push, []landmarkrd.PairQuery{{S: 1, T: 2}},
		landmarkrd.BatchOptions{PinLandmark: true, Landmark: 999}); err == nil {
		t.Error("invalid pinned landmark accepted")
	}
	res, err := landmarkrd.Pairs(g, landmarkrd.Push, []landmarkrd.PairQuery{{S: 1, T: 2}},
		landmarkrd.BatchOptions{PinLandmark: true, Landmark: 50, Options: landmarkrd.Options{Theta: 1e-8}})
	if err != nil || res[0].Err != nil {
		t.Fatalf("pinned batch failed: %v %v", err, res[0].Err)
	}
}

// TestPairsBatchLandmarkZeroValueSemantics covers the two edges of the old
// footgun: vertex 0 is pinnable, and a nonzero Landmark without PinLandmark
// is rejected instead of silently ignored.
func TestPairsBatchLandmarkZeroValueSemantics(t *testing.T) {
	g, err := landmarkrd.BarabasiAlbert(100, 3, 16)
	if err != nil {
		t.Fatal(err)
	}

	// Pinning vertex 0 works: PinLandmark disambiguates 0 from "unset".
	engine, err := landmarkrd.NewBatchEngine(g, landmarkrd.Push, landmarkrd.BatchOptions{
		PinLandmark: true, Landmark: 0, Options: landmarkrd.Options{Theta: 1e-8},
	})
	if err != nil {
		t.Fatalf("pinning landmark 0: %v", err)
	}
	if engine.Landmark() != 0 {
		t.Errorf("pinned landmark = %d, want 0", engine.Landmark())
	}
	res, err := engine.Pairs([]landmarkrd.PairQuery{{S: 1, T: 2}})
	if err != nil || res[0].Err != nil {
		t.Fatalf("pinned-0 batch failed: %v %v", err, res[0].Err)
	}
	want, _ := landmarkrd.Exact(g, 1, 2)
	if math.Abs(res[0].Estimate.Value-want) > 1e-4 {
		t.Errorf("pinned-0 value %v, want %v", res[0].Estimate.Value, want)
	}

	// A set-but-unpinned landmark is an error, not a silent strategy pick.
	if _, err := landmarkrd.Pairs(g, landmarkrd.Push, []landmarkrd.PairQuery{{S: 1, T: 2}},
		landmarkrd.BatchOptions{Landmark: 50}); err == nil {
		t.Error("Landmark without PinLandmark accepted silently")
	}
}

func TestPairsBatchEmpty(t *testing.T) {
	g, _ := landmarkrd.BarabasiAlbert(50, 3, 14)
	res, err := landmarkrd.Pairs(g, landmarkrd.Push, nil, landmarkrd.BatchOptions{})
	if err != nil || res != nil {
		t.Errorf("empty batch: %v, %v", res, err)
	}
	engine, err := landmarkrd.NewBatchEngine(g, landmarkrd.Push, landmarkrd.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err = engine.Pairs(nil)
	if err != nil || res != nil {
		t.Errorf("empty engine batch: %v, %v", res, err)
	}
}

func TestPairsBatchManyWorkersRace(t *testing.T) {
	// More workers than queries plus the race detector (when enabled via
	// `go test -race`) exercises concurrent access to the shared graph and
	// the shared metrics sink.
	g, err := landmarkrd.WattsStrogatz(300, 3, 0.2, 15)
	if err != nil {
		t.Fatal(err)
	}
	var queries []landmarkrd.PairQuery
	for i := 0; i < 12; i++ {
		queries = append(queries, landmarkrd.PairQuery{S: i, T: 150 + i})
	}
	results, err := landmarkrd.Pairs(g, landmarkrd.AbWalk, queries, landmarkrd.BatchOptions{
		Options: landmarkrd.Options{Seed: 2, Walks: 200},
		Workers: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Errorf("query %d failed: %v", i, r.Err)
		}
	}
}

// TestBatchEngineConcurrentBatchesRace submits several batches to one
// engine from concurrent goroutines: the pool hands every in-flight worker
// a private estimator while all of them record into one shared Metrics.
func TestBatchEngineConcurrentBatchesRace(t *testing.T) {
	g, err := landmarkrd.BarabasiAlbert(300, 3, 21)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := landmarkrd.NewBatchEngine(g, landmarkrd.BiPush, landmarkrd.BatchOptions{
		Options: landmarkrd.Options{Seed: 5, Walks: 64},
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]landmarkrd.PairQuery, 16)
	for i := range queries {
		queries[i] = landmarkrd.PairQuery{S: i, T: 100 + i}
	}
	done := make(chan error, 4)
	for b := 0; b < 4; b++ {
		go func() {
			for rep := 0; rep < 3; rep++ {
				if _, err := engine.Pairs(queries); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for b := 0; b < 4; b++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	stats := engine.Stats()
	if want := int64(4 * 3 * len(queries)); stats.Queries != want {
		t.Errorf("queries = %d, want %d", stats.Queries, want)
	}
}

// TestBatchEnginePoolingDeterminism is the pooled-vs-unpooled acceptance
// check: for a fixed seed and worker count, a warm engine, a cold engine,
// and the one-shot Pairs function must return byte-identical results for a
// Monte Carlo method.
func TestBatchEnginePoolingDeterminism(t *testing.T) {
	g, err := landmarkrd.BarabasiAlbert(500, 4, 17)
	if err != nil {
		t.Fatal(err)
	}
	opts := landmarkrd.BatchOptions{
		Options: landmarkrd.Options{Seed: 9, Walks: 128},
		Workers: 3,
	}
	queries := make([]landmarkrd.PairQuery, 20)
	for i := range queries {
		queries[i] = landmarkrd.PairQuery{S: i + 1, T: 400 - i}
	}

	oneShot, err := landmarkrd.Pairs(g, landmarkrd.BiPush, queries, opts)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := landmarkrd.NewBatchEngine(g, landmarkrd.BiPush, opts)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := engine.Pairs(queries)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := engine.Pairs(queries) // pool now reuses estimators
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		if cold[i].Estimate.Value != oneShot[i].Estimate.Value {
			t.Errorf("query %d: engine %v != one-shot %v", i, cold[i].Estimate.Value, oneShot[i].Estimate.Value)
		}
		if warm[i].Estimate.Value != cold[i].Estimate.Value {
			t.Errorf("query %d: warm pool %v != cold pool %v", i, warm[i].Estimate.Value, cold[i].Estimate.Value)
		}
	}
}

// TestBatchEngineAmortizesBuilds asserts the pooling win the tentpole
// promises: repeated batches on one engine construct estimators only on
// pool misses, while repeated one-shot Pairs calls rebuild every time.
func TestBatchEngineAmortizesBuilds(t *testing.T) {
	g, err := landmarkrd.BarabasiAlbert(400, 4, 19)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]landmarkrd.PairQuery, 12)
	for i := range queries {
		queries[i] = landmarkrd.PairQuery{S: i + 1, T: 300 + i}
	}
	const workers, reps = 4, 5

	pooled, err := landmarkrd.NewBatchEngine(g, landmarkrd.Push, landmarkrd.BatchOptions{
		Options: landmarkrd.Options{Seed: 1, Theta: 1e-6},
		Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < reps; r++ {
		if _, err := pooled.Pairs(queries); err != nil {
			t.Fatal(err)
		}
	}
	pooledBuilds := pooled.Stats().EstimatorBuilds

	unpooled := &landmarkrd.Metrics{}
	for r := 0; r < reps; r++ {
		if _, err := landmarkrd.Pairs(g, landmarkrd.Push, queries, landmarkrd.BatchOptions{
			Options: landmarkrd.Options{Seed: 1, Theta: 1e-6},
			Workers: workers,
			Metrics: unpooled,
		}); err != nil {
			t.Fatal(err)
		}
	}
	unpooledBuilds := unpooled.Snapshot().EstimatorBuilds

	if unpooledBuilds != workers*reps {
		t.Errorf("unpooled builds = %d, want %d", unpooledBuilds, workers*reps)
	}
	if pooledBuilds >= unpooledBuilds {
		t.Errorf("pooling did not amortize builds: pooled %d >= unpooled %d", pooledBuilds, unpooledBuilds)
	}
	// Sequential batches keep the pool warm, so the engine should never
	// need more estimators than one batch's worker fleet. The race
	// detector deliberately drops a fraction of sync.Pool puts to shake
	// out schedules, so only the amortization bound above holds there.
	if !raceEnabled && pooledBuilds > workers {
		t.Errorf("pooled builds = %d, want <= %d", pooledBuilds, workers)
	}
}
