package landmarkrd

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"landmarkrd/internal/core"
	"landmarkrd/internal/randx"
)

// PortfolioIndex is a K-landmark index with a cost-law router: one
// precomputed column r(·, ℓ_j) per landmark, and per-query routing to the
// landmark with the smallest r(s,ℓ)+r(t,ℓ) — the pair's estimated cost
// under the paper's hitting-time cost law (commute identity
// Vol·r = h(s,ℓ)+h(ℓ,s)). A single hub landmark loses on large-κ graphs
// (grids, roads) precisely because hitting times to it are large; K spread
// landmarks turn that into a memory/speed knob: K·n floats buy every query
// a nearby landmark.
type PortfolioIndex = core.Portfolio

// PortfolioStats snapshots per-landmark routed-query counts and conflict
// fallbacks (PortfolioIndex.Stats).
type PortfolioStats = core.PortfolioStats

// PortfolioBuildOptions configures BuildPortfolioIndex. The zero value
// builds a K=4 DiagExactCG portfolio with MaxDegree-seeded selection.
type PortfolioBuildOptions struct {
	// K is the portfolio size (default 4, clamped to the graph size).
	K int
	// Strategy picks the primary landmark; the remaining K−1 maximize a
	// cost-law score (degree + coreness + sampled-walk visits) times hop
	// distance to the already-chosen set, so hubs win on social graphs and
	// spatial spread wins on grids and paths.
	Strategy Strategy
	// Landmarks pins the landmark set explicitly, overriding K/Strategy.
	Landmarks []int
	// Mode selects the column builder (DiagExactCG, DiagMC, DiagSketch).
	// DiagSketch builds one sketch shared by all K columns.
	Mode DiagMode
	// Seed drives all randomness (default 1). For a fixed seed the
	// portfolio is byte-identical at any worker count.
	Seed uint64
	// Workers shards each column build (default GOMAXPROCS).
	Workers int
	// Precond selects the CG preconditioner per landmark column (default
	// PrecondJacobi; see PrecondMode). PrecondAuto resolves independently
	// per landmark; the resolved modes appear in the portfolio's
	// PrecondModes field and Stats.
	Precond PrecondMode
	// Metrics, when non-nil, receives one IndexBuilds increment, the total
	// build time (IndexBuildTime), and per-column ColumnBuildTime
	// observations.
	Metrics *Metrics
}

// BuildPortfolioIndex selects K landmarks by the cost-law score and builds
// one diagonal column per landmark. See PortfolioIndex for the routing
// model and SingleSource/NewPortfolioEstimator/BatchOptions.Portfolio for
// the query paths.
func BuildPortfolioIndex(g *Graph, opts PortfolioBuildOptions) (*PortfolioIndex, error) {
	if err := requireGraph(g); err != nil {
		return nil, err
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	return core.BuildPortfolio(g, core.PortfolioOptions{
		K:           opts.K,
		Strategy:    opts.Strategy,
		Landmarks:   opts.Landmarks,
		Mode:        opts.Mode,
		Workers:     opts.Workers,
		Metrics:     opts.Metrics,
		Precond:     opts.Precond,
		PrecondSeed: seed,
	}, randx.New(seed))
}

// ParseLandmarkList parses a comma-separated vertex list ("3,17,42") into
// landmark indices for PortfolioBuildOptions.Landmarks — the flag syntax
// rdserver replicas use to serve a shard subset of a fleet-wide portfolio.
// Vertices must be non-negative and distinct; whitespace around entries is
// ignored and an empty string yields nil.
func ParseLandmarkList(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	seen := make(map[int]bool, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("landmarkrd: landmark list entry %q: %w", p, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("landmarkrd: landmark list entry %d is negative", v)
		}
		if seen[v] {
			return nil, fmt.Errorf("landmarkrd: landmark %d listed twice", v)
		}
		seen[v] = true
		out = append(out, v)
	}
	return out, nil
}

// SelectPortfolioLandmarks picks k landmarks by the portfolio cost-law
// score without building columns — the primary by strategy, the rest by
// score × hop-distance spread.
func SelectPortfolioLandmarks(g *Graph, k int, s Strategy, seed uint64) ([]int, error) {
	if err := requireGraph(g); err != nil {
		return nil, err
	}
	return core.SelectPortfolioLandmarks(g, k, s, randx.New(seed))
}

// PortfolioSingleSource computes r(s,·) through the portfolio's cheapest
// landmark for s, returning the answers and the landmark that served them.
func PortfolioSingleSource(p *PortfolioIndex, s int) ([]float64, int, error) {
	return p.SingleSource(s, core.SingleSourceOptions{})
}

// PortfolioSingleSourceContext is PortfolioSingleSource with cancellation.
func PortfolioSingleSourceContext(ctx context.Context, p *PortfolioIndex, s int) ([]float64, int, error) {
	return p.SingleSourceContext(ctx, s, core.SingleSourceOptions{})
}

// PortfolioEstimator answers pair queries through a portfolio: each query
// routes to the landmark with the smallest cost-law score for (s,t) and
// falls back across the remaining landmarks, in cost order, when the
// routed landmark collides with an endpoint (ErrLandmarkConflict). Any
// Method works per landmark. Like Estimator it is not safe for concurrent
// use; the batch engine pools them per worker.
type PortfolioEstimator struct {
	p       *PortfolioIndex
	method  Method
	ests    []*Estimator
	metrics *Metrics
}

// NewPortfolioEstimator builds one per-landmark estimator per portfolio
// member, all recording into a single shared metrics sink. Each landmark's
// estimator gets its own random stream derived from opts.Seed, so results
// do not depend on which other landmarks exist in the portfolio.
func NewPortfolioEstimator(p *PortfolioIndex, m Method, opts Options) (*PortfolioEstimator, error) {
	if p == nil {
		return nil, errors.New("landmarkrd: nil portfolio")
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	e := &PortfolioEstimator{p: p, method: m, metrics: &Metrics{}}
	for j, v := range p.Landmarks {
		lopts := opts
		lopts.Seed = seed + uint64(j)*0x9e3779b97f4a7c15
		if lopts.Seed == 0 {
			lopts.Seed = 1
		}
		est, err := NewEstimatorAt(p.G, m, v, lopts)
		if err != nil {
			return nil, err
		}
		est.SetMetrics(e.metrics)
		e.ests = append(e.ests, est)
	}
	return e, nil
}

// Method returns the per-landmark algorithm in use.
func (e *PortfolioEstimator) Method() Method { return e.method }

// Portfolio returns the underlying portfolio index.
func (e *PortfolioEstimator) Portfolio() *PortfolioIndex { return e.p }

// Landmarks returns the portfolio landmark vertices.
func (e *PortfolioEstimator) Landmarks() []int { return e.p.Landmarks }

// Metrics returns the shared metrics sink (always non-nil).
func (e *PortfolioEstimator) Metrics() *Metrics { return e.metrics }

// SetMetrics redirects all per-landmark estimators to record into m. Call
// before issuing queries, not concurrently with them.
func (e *PortfolioEstimator) SetMetrics(m *Metrics) {
	e.metrics = m
	for _, est := range e.ests {
		est.SetMetrics(m)
	}
}

// Stats snapshots the shared metrics sink.
func (e *PortfolioEstimator) Stats() Stats { return e.metrics.Snapshot() }

// Reseed resets every per-landmark estimator's random stream to a
// deterministic function of seed (each landmark keeps its own offset).
func (e *PortfolioEstimator) Reseed(seed uint64) {
	if seed == 0 {
		seed = 1
	}
	for j, est := range e.ests {
		s := seed + uint64(j)*0x9e3779b97f4a7c15
		if s == 0 {
			s = 1
		}
		est.Reseed(s)
	}
}

// Pair estimates r(s,t) through the cheapest non-conflicting landmark.
func (e *PortfolioEstimator) Pair(s, t int) (Estimate, error) {
	return e.PairContext(context.Background(), s, t)
}

// PairContext is Pair with cancellation. Routing: landmarks are tried in
// ascending cost-law order; one that equals s or t is skipped (counted as
// a RouterFallback). Only if every landmark conflicts does the query fail
// with ErrLandmarkConflict — with K ≥ 3 distinct landmarks that cannot
// happen.
func (e *PortfolioEstimator) PairContext(ctx context.Context, s, t int) (Estimate, error) {
	g := e.p.G
	if err := g.ValidateVertex(s); err != nil {
		return Estimate{}, err
	}
	if err := g.ValidateVertex(t); err != nil {
		return Estimate{}, err
	}
	for _, j := range e.p.Route(s, t) {
		v := e.p.Landmarks[j]
		if v == s || v == t {
			e.p.NoteFallback()
			e.metrics.RouterFallbacks.Inc()
			continue
		}
		res, err := e.ests[j].PairContext(ctx, s, t)
		if err != nil {
			if errors.Is(err, ErrLandmarkConflict) {
				e.p.NoteFallback()
				e.metrics.RouterFallbacks.Inc()
				continue
			}
			return res, err
		}
		e.p.NoteRouted(j)
		e.metrics.PortfolioQueries.Inc()
		return res, nil
	}
	return Estimate{}, fmt.Errorf("landmarkrd: every portfolio landmark conflicts with query (%d,%d): %w", s, t, ErrLandmarkConflict)
}
